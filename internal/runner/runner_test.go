package runner

import (
	"errors"
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		spec    Spec
		wantErr string // "" = ok
	}{
		{"workload ok", Spec{Target: "strongarm", Workload: "gsm/dec"}, ""},
		{"src ok", Spec{Target: "ppc750", Src: "nop"}, ""},
		{"image ok", Spec{Target: "arm-iss", Image: []byte{1}}, ""},
		{"none", Spec{Target: "strongarm"}, "exactly one"},
		{"two", Spec{Target: "strongarm", Workload: "gsm/dec", Src: "nop"}, "ambiguous"},
		{"three", Spec{Target: "strongarm", Workload: "gsm/dec", Src: "nop", Image: []byte{1}}, "ambiguous"},
		{"bad target", Spec{Target: "vax", Workload: "gsm/dec"}, "unknown target"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}

// Run and a hand-stepped Instance must agree exactly: same cycles,
// instructions and reported values — the CLI and the server share one
// truth.
func TestRunMatchesInstance(t *testing.T) {
	for _, target := range []string{"strongarm", "ppc750"} {
		spec := Spec{Target: target, Workload: "dsp/fir", N: 30}
		res, err := Run(spec, RunOptions{})
		if err != nil {
			t.Fatalf("%s: Run: %v", target, err)
		}
		in, err := New(spec)
		if err != nil {
			t.Fatalf("%s: New: %v", target, err)
		}
		for !in.Done() {
			if in.Cycle() > res.Cycles+10 {
				t.Fatalf("%s: instance overran Run's %d cycles", target, res.Cycles)
			}
			if err := in.StepCycle(); err != nil {
				t.Fatal(err)
			}
		}
		got, err := in.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		if got.Cycles != res.Cycles || got.Instrs != res.Instrs {
			t.Fatalf("%s: instance (%d cycles, %d instrs) != Run (%d cycles, %d instrs)",
				target, got.Cycles, got.Instrs, res.Cycles, res.Instrs)
		}
		if len(got.Reported) != len(res.Reported) {
			t.Fatalf("%s: reported mismatch: %v vs %v", target, got.Reported, res.Reported)
		}
		for i := range got.Reported {
			if got.Reported[i] != res.Reported[i] {
				t.Fatalf("%s: reported mismatch: %v vs %v", target, got.Reported, res.Reported)
			}
		}
	}
}

func TestNewNotSteppable(t *testing.T) {
	for _, target := range []string{"sscalar", "hwcentric", "arm-iss", "ppc-iss"} {
		_, err := New(Spec{Target: target, Workload: "dsp/fir"})
		if !errors.Is(err, ErrNotSteppable) {
			t.Fatalf("%s: want ErrNotSteppable, got %v", target, err)
		}
	}
}

func TestInstancePeek(t *testing.T) {
	in, err := New(Spec{Target: "strongarm", Workload: "dsp/fir", N: 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50 && !in.Done(); i++ {
		if err := in.StepCycle(); err != nil {
			t.Fatal(err)
		}
	}
	regs := in.Registers()
	if len(regs) != 17 { // r0..r15 + nzcv
		t.Fatalf("got %d ARM registers, want 17", len(regs))
	}
	if regs[15].Name != "r15" || regs[16].Name != "nzcv" {
		t.Fatalf("unexpected register names: %v", regs)
	}
	data, err := in.ReadMem(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 16 {
		t.Fatalf("got %d bytes", len(data))
	}
	if _, err := in.ReadMem(0xffff_fff0, 64); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
	if _, err := in.ReadMem(0, 1<<31); err == nil {
		t.Fatal("oversized read succeeded")
	}

	pp, err := New(Spec{Target: "ppc750", Workload: "dsp/fir", N: 20})
	if err != nil {
		t.Fatal(err)
	}
	pregs := pp.Registers()
	if len(pregs) != 37 { // r0..r31 + cr, lr, ctr, xer, pc
		t.Fatalf("got %d PPC registers, want 37", len(pregs))
	}
}

func TestResultReportDeterministic(t *testing.T) {
	res, err := Run(Spec{Target: "strongarm", Workload: "dsp/fir", N: 20}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	res.Report(&a)
	res.Report(&b)
	if a.String() != b.String() {
		t.Fatalf("report is nondeterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "CPI:") || !strings.Contains(a.String(), "instructions:") {
		t.Fatalf("report missing fields:\n%s", a.String())
	}
}
