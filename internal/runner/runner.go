// Package runner owns the target-independent construction and
// reporting logic shared by every simulation entry point: the CLI
// driver (cmd/osmsim), the batch driver and the HTTP service
// (cmd/osmserve). A Spec names a target plus exactly one program
// source (built-in workload, assembly text or a loader image);
// Run executes it to completion for any target, and New builds a
// steppable Instance — step, peek, snapshot, restore — for the
// cycle-accurate OSM models that long-lived sessions are made of.
package runner

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/baseline/hwcentric"
	"repro/internal/baseline/sscalar"
	"repro/internal/isa/arm"
	"repro/internal/isa/ppc"
	"repro/internal/iss"
	"repro/internal/loader"
	"repro/internal/mem"
	"repro/internal/osm"
	"repro/internal/osm/invariant"
	"repro/internal/sim/ppc750"
	"repro/internal/sim/strongarm"
	"repro/internal/workload"
)

// Targets, in the order they are documented.
var Targets = []string{"strongarm", "sscalar", "ppc750", "hwcentric", "arm-iss", "ppc-iss"}

// ErrNotSteppable reports a target that only supports run-to-
// completion (no cycle stepping or snapshots), so it cannot back a
// long-lived session.
var ErrNotSteppable = errors.New("runner: target supports run-to-completion only")

// Spec describes one simulation: a target plus exactly one program
// source. The zero values of the optional knobs select the target's
// defaults.
type Spec struct {
	// Target selects the model: strongarm | sscalar | ppc750 |
	// hwcentric | arm-iss | ppc-iss.
	Target string `json:"target"`
	// Workload names a built-in kernel (exclusive with Src/Image).
	Workload string `json:"workload,omitempty"`
	// N is the workload iteration count (0 = kernel default).
	N int `json:"n,omitempty"`
	// Src is assembly source text (exclusive with Workload/Image).
	Src string `json:"src,omitempty"`
	// Image is a loader program image (exclusive with Workload/Src).
	Image []byte `json:"image,omitempty"`
	// MaxCycles bounds a Run (0 = 1G).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// Perfect disables caches and TLBs.
	Perfect bool `json:"perfect,omitempty"`
	// Scan selects the reference scan scheduler on OSM targets. It is
	// the legacy form of Engine = "scan" and takes precedence.
	Scan bool `json:"scan,omitempty"`
	// Engine selects the execution engine on OSM targets: "event"
	// (default), "scan", "compiled" (guard programs compiled by
	// osm/compile, executed without interface dispatch) or "generated"
	// (monomorphic Go edge functions emitted by osmgen and built into
	// the binary).
	Engine string `json:"engine,omitempty"`
	// Check installs the runtime OSM invariant checker on the model's
	// director: token conservation, binding consistency, scheduler
	// equivalence and livelock detection verified every control step.
	// A violation aborts the run with an *invariant.Error.
	Check bool `json:"check,omitempty"`
}

// IsARM reports whether the target executes the ARM ISA.
func (s *Spec) IsARM() bool {
	switch s.Target {
	case "strongarm", "sscalar", "arm-iss":
		return true
	}
	return false
}

func knownTarget(t string) bool {
	for _, k := range Targets {
		if t == k {
			return true
		}
	}
	return false
}

// isOSM reports whether the target is driven by an OSM director (and
// therefore has selectable execution engines).
func (s *Spec) isOSM() bool { return s.Target == "strongarm" || s.Target == "ppc750" }

// engine resolves the spec's engine selection, folding the legacy
// Scan flag in.
func (s *Spec) engine() (osm.Engine, error) {
	eng, err := osm.ParseEngine(s.Engine)
	if err != nil {
		return osm.EngineEvent, err
	}
	if s.Scan {
		eng = osm.EngineScan
	}
	return eng, nil
}

// Validate checks the spec for a known target and an unambiguous
// program source. The error is a single line suitable for CLI and
// HTTP error surfaces.
func (s *Spec) Validate() error {
	if !knownTarget(s.Target) {
		return fmt.Errorf("unknown target %q (want one of %s)", s.Target, strings.Join(Targets, ", "))
	}
	if _, err := s.engine(); err != nil {
		return err
	}
	if s.Engine != "" && !s.isOSM() {
		return fmt.Errorf("engine %q: target %s has no OSM director (engines apply to strongarm and ppc750)",
			s.Engine, s.Target)
	}
	var set []string
	if s.Workload != "" {
		set = append(set, "workload")
	}
	if s.Src != "" {
		set = append(set, "src")
	}
	if len(s.Image) > 0 {
		set = append(set, "image")
	}
	switch len(set) {
	case 0:
		return fmt.Errorf("exactly one of workload, src or image is required")
	case 1:
		return nil
	default:
		return fmt.Errorf("ambiguous program source: %s are all set; provide exactly one of workload, src or image",
			strings.Join(set, " and "))
	}
}

// Programs resolves the spec's program source into a program for the
// target's ISA (one of the two results is nil).
func (s *Spec) Programs() (*arm.Program, *ppc.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	switch {
	case s.Workload != "":
		w := workload.ByName(s.Workload)
		if w == nil {
			return nil, nil, fmt.Errorf("unknown workload %q", s.Workload)
		}
		n := s.N
		if n == 0 {
			n = w.DefaultN
		}
		if s.IsARM() {
			p, err := w.ARMProgram(n)
			return p, nil, err
		}
		p, err := w.PPCProgram(n)
		return nil, p, err
	case s.Src != "":
		if s.IsARM() {
			p, err := arm.Assemble(s.Src)
			return p, nil, err
		}
		p, err := ppc.Assemble(s.Src)
		return nil, p, err
	default:
		im, err := loader.Unmarshal(s.Image)
		if err != nil {
			return nil, nil, err
		}
		switch {
		case im.Arch == loader.ArchARM && s.IsARM():
			return &arm.Program{Org: im.Org, Entry: im.Entry, Words: im.Words}, nil, nil
		case im.Arch == loader.ArchPPC && !s.IsARM():
			return nil, &ppc.Program{Org: im.Org, Entry: im.Entry, Words: im.Words}, nil
		}
		return nil, nil, fmt.Errorf("image architecture %s does not match target %s", im.Arch, s.Target)
	}
}

func (s *Spec) hier() mem.HierarchyConfig {
	if s.Perfect {
		return mem.HierarchyConfig{DisableCaches: true, DisableTLBs: true}
	}
	return mem.HierarchyConfig{}
}

func (s *Spec) maxCycles() uint64 {
	if s.MaxCycles == 0 {
		return 1_000_000_000
	}
	return s.MaxCycles
}

// Result is the shared result struct every entry point reports: the
// CLI prints it (or marshals it with -json), the batch manifest and
// the HTTP service embed it.
type Result struct {
	Target string `json:"target"`
	// Arch is the ISA: "arm" or "ppc".
	Arch   string `json:"arch"`
	Instrs uint64 `json:"instructions"`
	// Cycles is zero for functional (ISS-only) targets.
	Cycles   uint64   `json:"cycles,omitempty"`
	Reported []uint32 `json:"reported,omitempty"`
	// Extra holds the target-specific metrics (CPI, cache lines,
	// mispredict counts...), already formatted.
	Extra map[string]string `json:"extra,omitempty"`
	// WallNS is the caller-measured wall time in nanoseconds.
	WallNS int64 `json:"wall_ns,omitempty"`
}

// Report writes the human-readable form (the historical osmsim
// output, with deterministic extra-key order).
func (r *Result) Report(w io.Writer) {
	fmt.Fprintf(w, "instructions: %d\n", r.Instrs)
	if r.Cycles > 0 {
		fmt.Fprintf(w, "cycles:       %d\n", r.Cycles)
		if r.WallNS > 0 {
			fmt.Fprintf(w, "speed:        %.0f cycles/sec\n", float64(r.Cycles)/(float64(r.WallNS)/1e9))
		}
	}
	if r.WallNS > 0 {
		fmt.Fprintf(w, "wall time:    %.3fms\n", float64(r.WallNS)/1e6)
	}
	if len(r.Reported) > 0 {
		vals := make([]string, len(r.Reported))
		for i, v := range r.Reported {
			vals[i] = fmt.Sprintf("%#x", v)
		}
		fmt.Fprintf(w, "reported:     %s\n", strings.Join(vals, " "))
	}
	keys := make([]string, 0, len(r.Extra))
	for k := range r.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%-13s %s\n", k+":", r.Extra[k])
	}
}

func cacheLine(s mem.CacheStats) string {
	return fmt.Sprintf("%d acc, %.2f%% hit", s.Accesses, 100*s.HitRate())
}

// Reg is one named architectural register value.
type Reg struct {
	Name  string `json:"name"`
	Value uint32 `json:"value"`
}

func armRegs(is *iss.ARM) []Reg {
	regs := make([]Reg, 0, 18)
	for i, v := range is.CPU.R {
		regs = append(regs, Reg{Name: fmt.Sprintf("r%d", i), Value: v})
	}
	regs = append(regs, Reg{Name: "nzcv", Value: is.CPU.Flags()})
	return regs
}

func ppcRegs(is *iss.PPC) []Reg {
	c := is.CPU
	regs := make([]Reg, 0, 37)
	for i, v := range c.R {
		regs = append(regs, Reg{Name: fmt.Sprintf("r%d", i), Value: v})
	}
	regs = append(regs,
		Reg{Name: "cr", Value: c.CR},
		Reg{Name: "lr", Value: c.LR},
		Reg{Name: "ctr", Value: c.CTR},
		Reg{Name: "xer", Value: c.XER},
		Reg{Name: "pc", Value: c.NextPC})
	return regs
}

func ramReader(ram *mem.RAM) func(addr, n uint32) ([]byte, error) {
	return func(addr, n uint32) ([]byte, error) {
		size := ram.Size()
		if n > size || addr > size-n {
			return nil, fmt.Errorf("range [%#x,+%d) exceeds %d-byte RAM", addr, n, size)
		}
		out := make([]byte, n)
		for i := uint32(0); i < n; i++ {
			out[i] = ram.Read8(addr + i)
		}
		return out, nil
	}
}

// Instance is a steppable simulation: the surface a long-lived
// session (batch job, HTTP session) drives. Only the cycle-accurate
// OSM targets (strongarm, ppc750) support it.
type Instance struct {
	spec     Spec
	arch     string
	director *osm.Director

	step     func() error
	cycle    func() uint64
	done     func() bool
	snapshot func() ([]byte, error)
	restore  func([]byte) error
	finalize func() (Result, error)
	regs     func() []Reg
	readMem  func(addr, n uint32) ([]byte, error)
}

// Spec returns the instance's originating spec.
func (in *Instance) Spec() Spec { return in.spec }

// Arch returns the ISA: "arm" or "ppc".
func (in *Instance) Arch() string { return in.arch }

// Director exposes the model's director (for tracing).
func (in *Instance) Director() *osm.Director { return in.director }

// StepCycle advances the simulation one clock cycle.
func (in *Instance) StepCycle() error { return in.step() }

// Cycle returns the number of completed clock cycles.
func (in *Instance) Cycle() uint64 { return in.cycle() }

// Done reports whether the program has exited and the pipeline
// drained.
func (in *Instance) Done() bool { return in.done() }

// Snapshot encodes the full simulation state (internal/snap format).
func (in *Instance) Snapshot() ([]byte, error) { return in.snapshot() }

// Restore replaces the simulation state from a snapshot.
func (in *Instance) Restore(blob []byte) error { return in.restore(blob) }

// Finalize checks end-of-run invariants and returns the result.
func (in *Instance) Finalize() (Result, error) { return in.finalize() }

// Registers returns the named architectural register values.
func (in *Instance) Registers() []Reg { return in.regs() }

// ReadMem copies n bytes of simulated memory starting at addr.
func (in *Instance) ReadMem(addr, n uint32) ([]byte, error) { return in.readMem(addr, n) }

// MaxCycles returns the spec's cycle budget (with the default
// applied).
func (in *Instance) MaxCycles() uint64 { return in.spec.maxCycles() }

// CheckInvariants runs a one-shot structural invariant check over the
// model right now: token conservation and binding consistency as of
// the current control step. It works whether or not the per-step
// checker was enabled, so debug surfaces can probe any session.
func (in *Instance) CheckInvariants() []invariant.Violation {
	return invariant.New(in.director).CheckNow()
}

// Hooks assembles an Instance from caller-supplied callbacks — the
// seam drivers use to script instances in tests (a deliberately slow
// model for deadline coverage, a failing Snapshot, ...). Nil hooks get
// inert defaults.
type Hooks struct {
	Spec      Spec
	Arch      string
	Director  *osm.Director
	Step      func() error
	Cycle     func() uint64
	Done      func() bool
	Snapshot  func() ([]byte, error)
	Restore   func([]byte) error
	Finalize  func() (Result, error)
	Registers func() []Reg
	ReadMem   func(addr, n uint32) ([]byte, error)
}

// NewFromHooks builds an Instance whose behavior is entirely defined
// by the hooks.
func NewFromHooks(h Hooks) *Instance {
	if h.Director == nil {
		h.Director = osm.NewDirector()
	}
	if h.Step == nil {
		h.Step = func() error { return nil }
	}
	if h.Cycle == nil {
		h.Cycle = func() uint64 { return 0 }
	}
	if h.Done == nil {
		h.Done = func() bool { return false }
	}
	if h.Snapshot == nil {
		h.Snapshot = func() ([]byte, error) { return nil, fmt.Errorf("runner: no snapshot hook") }
	}
	if h.Restore == nil {
		h.Restore = func([]byte) error { return fmt.Errorf("runner: no restore hook") }
	}
	if h.Finalize == nil {
		h.Finalize = func() (Result, error) { return Result{Target: h.Spec.Target, Arch: h.Arch}, nil }
	}
	if h.Registers == nil {
		h.Registers = func() []Reg { return nil }
	}
	if h.ReadMem == nil {
		h.ReadMem = func(addr, n uint32) ([]byte, error) { return nil, fmt.Errorf("runner: no mem hook") }
	}
	return &Instance{
		spec: h.Spec, arch: h.Arch, director: h.Director,
		step: h.Step, cycle: h.Cycle, done: h.Done,
		snapshot: h.Snapshot, restore: h.Restore, finalize: h.Finalize,
		regs: h.Registers, readMem: h.ReadMem,
	}
}

// New builds a steppable Instance for the spec. Targets without a
// step/snapshot surface return ErrNotSteppable.
func New(spec Spec) (*Instance, error) {
	armProg, ppcProg, err := spec.Programs()
	if err != nil {
		return nil, err
	}
	switch spec.Target {
	case "strongarm":
		eng, _ := spec.engine()
		s, err := strongarm.New(armProg, strongarm.Config{Hier: spec.hier(), Engine: eng})
		if err != nil {
			return nil, err
		}
		if eng == osm.EngineCompiled {
			// Compile eagerly so model errors surface at session
			// creation, not on the first step.
			if _, err := s.Director().Compile(); err != nil {
				return nil, err
			}
		}
		if eng == osm.EngineGenerated {
			// Resolve the generated edge functions eagerly for the same
			// reason.
			if _, err := s.Director().Generated(); err != nil {
				return nil, err
			}
		}
		if spec.Check {
			invariant.Attach(s.Director())
		}
		return &Instance{
			spec:     spec,
			arch:     "arm",
			director: s.Director(),
			step:     s.StepCycle,
			cycle:    s.Cycle,
			done:     s.Done,
			snapshot: s.Snapshot,
			restore:  s.Restore,
			finalize: func() (Result, error) {
				st, err := s.Finalize()
				return armResult(spec.Target, st, s.ISS), err
			},
			regs:    func() []Reg { return armRegs(s.ISS) },
			readMem: ramReader(s.ISS.RAM),
		}, nil
	case "ppc750":
		eng, _ := spec.engine()
		s, err := ppc750.New(ppcProg, ppc750.Config{Hier: spec.hier(), Engine: eng})
		if err != nil {
			return nil, err
		}
		if eng == osm.EngineCompiled {
			if _, err := s.Director().Compile(); err != nil {
				return nil, err
			}
		}
		if eng == osm.EngineGenerated {
			if _, err := s.Director().Generated(); err != nil {
				return nil, err
			}
		}
		if spec.Check {
			invariant.Attach(s.Director())
		}
		return &Instance{
			spec:     spec,
			arch:     "ppc",
			director: s.Director(),
			step:     s.StepCycle,
			cycle:    s.Cycle,
			done:     s.Done,
			snapshot: s.Snapshot,
			restore:  s.Restore,
			finalize: func() (Result, error) {
				st, err := s.Finalize()
				return ppcResult(spec.Target, st, s.ISS), err
			},
			regs:    func() []Reg { return ppcRegs(s.ISS) },
			readMem: ramReader(s.ISS.RAM),
		}, nil
	default:
		if !knownTarget(spec.Target) {
			return nil, fmt.Errorf("unknown target %q", spec.Target)
		}
		return nil, fmt.Errorf("%w: %s", ErrNotSteppable, spec.Target)
	}
}

func armResult(target string, st strongarm.Stats, is *iss.ARM) Result {
	return Result{
		Target: target, Arch: "arm",
		Cycles: st.Cycles, Instrs: st.Instrs, Reported: is.Reported,
		Extra: map[string]string{
			"CPI":       fmt.Sprintf("%.3f", st.CPI()),
			"redirects": fmt.Sprint(st.Redirects),
			"icache":    cacheLine(st.ICache),
			"dcache":    cacheLine(st.DCache),
		},
	}
}

func ppcResult(target string, st ppc750.Stats, is *iss.PPC) Result {
	return Result{
		Target: target, Arch: "ppc",
		Cycles: st.Cycles, Instrs: st.Instrs, Reported: is.Reported,
		Extra: map[string]string{
			"IPC":         fmt.Sprintf("%.3f", st.IPC()),
			"mispredicts": fmt.Sprint(st.Mispredicts),
			"bht":         fmt.Sprintf("%.1f%%", 100*st.BHTAccuracy),
			"icache":      cacheLine(st.ICache),
			"dcache":      cacheLine(st.DCache),
		},
	}
}

// RunOptions tune a Run.
type RunOptions struct {
	// Trace, if non-nil, receives one line per executed instruction.
	Trace io.Writer
	// Out receives program console output (default: discarded).
	Out io.Writer
}

// Run builds the spec's simulator, runs it to completion and returns
// the result. It supports every target, including the run-to-
// completion-only baselines and functional ISSes.
func Run(spec Spec, opts RunOptions) (Result, error) {
	armProg, ppcProg, err := spec.Programs()
	if err != nil {
		return Result{}, err
	}
	armTrace := func(pc uint32, ins arm.Instr) {
		fmt.Fprintf(opts.Trace, "%08x:  %s\n", pc, ins.String())
	}
	ppcTrace := func(pc uint32, ins ppc.Instr) {
		fmt.Fprintf(opts.Trace, "%08x:  %s\n", pc, ins.String())
	}
	switch spec.Target {
	case "strongarm":
		eng, _ := spec.engine()
		s, err := strongarm.New(armProg, strongarm.Config{Hier: spec.hier(), Engine: eng})
		if err != nil {
			return Result{}, err
		}
		if spec.Check {
			invariant.Attach(s.Director())
		}
		if opts.Trace != nil {
			s.ISS.Trace = armTrace
		}
		if opts.Out != nil {
			s.ISS.Out = opts.Out
		}
		st, err := s.Run(spec.maxCycles())
		if err != nil {
			return Result{}, err
		}
		return armResult(spec.Target, st, s.ISS), nil
	case "sscalar":
		s, err := sscalar.New(armProg, sscalar.Config{Hier: spec.hier()})
		if err != nil {
			return Result{}, err
		}
		if opts.Trace != nil {
			s.ISS.Trace = armTrace
		}
		if opts.Out != nil {
			s.ISS.Out = opts.Out
		}
		st, err := s.Run(spec.maxCycles())
		if err != nil {
			return Result{}, err
		}
		return Result{
			Target: spec.Target, Arch: "arm",
			Cycles: st.Cycles, Instrs: st.Instrs, Reported: s.ISS.Reported,
			Extra: map[string]string{"CPI": fmt.Sprintf("%.3f", st.CPI())},
		}, nil
	case "ppc750":
		eng, _ := spec.engine()
		s, err := ppc750.New(ppcProg, ppc750.Config{Hier: spec.hier(), Engine: eng})
		if err != nil {
			return Result{}, err
		}
		if spec.Check {
			invariant.Attach(s.Director())
		}
		if opts.Trace != nil {
			s.ISS.Trace = ppcTrace
		}
		if opts.Out != nil {
			s.ISS.Out = opts.Out
		}
		st, err := s.Run(spec.maxCycles())
		if err != nil {
			return Result{}, err
		}
		return ppcResult(spec.Target, st, s.ISS), nil
	case "hwcentric":
		s, err := hwcentric.New(ppcProg, hwcentric.Config{Hier: spec.hier()})
		if err != nil {
			return Result{}, err
		}
		if opts.Trace != nil {
			s.ISS.Trace = ppcTrace
		}
		if opts.Out != nil {
			s.ISS.Out = opts.Out
		}
		st, err := s.Run(spec.maxCycles())
		if err != nil {
			return Result{}, err
		}
		return Result{
			Target: spec.Target, Arch: "ppc",
			Cycles: st.Cycles, Instrs: st.Instrs, Reported: s.ISS.Reported,
			Extra: map[string]string{
				"CPI":   fmt.Sprintf("%.3f", st.CPI()),
				"wires": fmt.Sprint(st.Wires),
				"evals": fmt.Sprint(st.ModuleEvals),
			},
		}, nil
	case "arm-iss":
		s, err := iss.NewARM(armProg, 1024)
		if err != nil {
			return Result{}, err
		}
		if opts.Trace != nil {
			s.Trace = armTrace
		}
		if opts.Out != nil {
			s.Out = opts.Out
		}
		if err := s.Run(spec.maxCycles()); err != nil {
			return Result{}, err
		}
		return Result{Target: spec.Target, Arch: "arm", Instrs: s.Stats.Instrs, Reported: s.Reported}, nil
	case "ppc-iss":
		s, err := iss.NewPPC(ppcProg, 1024)
		if err != nil {
			return Result{}, err
		}
		if opts.Trace != nil {
			s.Trace = ppcTrace
		}
		if opts.Out != nil {
			s.Out = opts.Out
		}
		if err := s.Run(spec.maxCycles()); err != nil {
			return Result{}, err
		}
		return Result{Target: spec.Target, Arch: "ppc", Instrs: s.Stats.Instrs, Reported: s.Reported}, nil
	default:
		return Result{}, fmt.Errorf("unknown target %q", spec.Target)
	}
}
