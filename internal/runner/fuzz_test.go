package runner

import (
	"encoding/json"
	"testing"
)

// FuzzSpec drives the spec-validation path every network-facing entry
// point shares: JSON decode, Validate, then program resolution
// (workload lookup, assembler, image loader). Specs arrive from
// untrusted HTTP bodies and batch files, so the path must reject bad
// input with an error — never panic — and a success must yield
// exactly one program matching the target's ISA.
func FuzzSpec(f *testing.F) {
	f.Add([]byte(`{"target":"strongarm","workload":"gsm/dec","n":3,"check":true}`))
	f.Add([]byte(`{"target":"ppc750","src":"loop: addi r3, r3, -1\ncmpwi r3, 0\nbne loop\nsc"}`))
	f.Add([]byte(`{"target":"arm-iss","src":"mov r0, #1\nswi #0"}`))
	f.Add([]byte(`{"target":"sscalar","image":"T1NNQgEAAAAAAAAAAAAAAAAAAAHjoAAB"}`))
	f.Add([]byte(`{"target":"strongarm","workload":"gsm/dec","src":"nop"}`))
	f.Add([]byte(`{"target":"nope"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256<<10 {
			return
		}
		var spec Spec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		armProg, ppcProg, err := spec.Programs()
		if err != nil {
			return
		}
		if (armProg == nil) == (ppcProg == nil) {
			t.Fatalf("Programs() returned %v arm / %v ppc for %+v", armProg != nil, ppcProg != nil, spec)
		}
		if spec.IsARM() != (armProg != nil) {
			t.Fatalf("program ISA does not match target %q", spec.Target)
		}
	})
}
