// Package wire is the binary hot-path protocol of the simulation
// service: a length-prefixed framing layer plus a small set of
// fixed-layout request/response messages for the operations a
// fine-grained client issues per simulated quantum — step, peek
// registers or memory, pull the trace window. The HTTP/JSON API
// remains the control plane (create, evict, snapshot, restore); this
// package exists because EXPERIMENTS.md §10 measured the HTTP/JSON
// round trip dominating per-cycle cost for small step requests.
//
// The framing is deliberately minimal and symmetric:
//
//	offset  size  field
//	0       4     magic 0x4f534d57 ("OSMW"), little-endian
//	4       1     protocol version (Version)
//	5       1     op code
//	6       2     flags (must be zero; reserved)
//	8       4     request id (echoed verbatim in the response)
//	12      4     payload length (bounded by MaxPayload)
//	16      …     payload (snap-encoded message)
//
// Request ids multiplex concurrent requests over one connection: the
// client stamps each frame with a fresh id and the server echoes it,
// so responses may arrive in any order and a slow step never blocks a
// concurrent register peek on the same connection. Error responses
// are a single Nack message carrying a machine-readable code that
// mirrors the HTTP plane's status mapping (backpressure ↔ 429,
// draining ↔ 503, not-found ↔ 404, conflict ↔ 409).
//
// Payloads reuse the internal/snap codec — fixed-width little-endian
// integers, length-prefixed strings, sticky-error bounds-checked
// reads — so the decoder never panics on hostile input; FuzzFrame
// keeps it that way.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Magic identifies a wire frame ("OSMW" read as a little-endian u32).
const Magic uint32 = 0x4f534d57

// Version is the protocol version carried in every frame header.
// Frames with a different version are rejected at decode.
const Version uint8 = 1

// HeaderSize is the fixed frame-header length in bytes.
const HeaderSize = 16

// MaxPayload bounds a frame payload (16 MiB) so a hostile or corrupt
// length prefix cannot turn into a giant allocation.
const MaxPayload uint32 = 16 << 20

// Op is a frame's operation code. Responses carry the op of the
// request they answer; errors come back as OpNack.
type Op uint8

// The protocol operations. The hot path is OpStep/OpRegisters/
// OpMem/OpTrace; OpHello is the connection handshake (optional —
// version checking also happens per frame).
const (
	OpHello     Op = 1
	OpStep      Op = 2
	OpRegisters Op = 3
	OpMem       Op = 4
	OpTrace     Op = 5
	// OpNack is the error response to any request.
	OpNack Op = 0x7e
)

func (o Op) String() string {
	switch o {
	case OpHello:
		return "hello"
	case OpStep:
		return "step"
	case OpRegisters:
		return "registers"
	case OpMem:
		return "mem"
	case OpTrace:
		return "trace"
	case OpNack:
		return "nack"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// knownOp reports whether the op code is part of the protocol. The
// frame layer rejects unknown ops at decode so a desynchronized or
// hostile stream fails at the first frame boundary.
func knownOp(o Op) bool {
	switch o {
	case OpHello, OpStep, OpRegisters, OpMem, OpTrace, OpNack:
		return true
	}
	return false
}

// Frame is one decoded frame: an op, the multiplexing request id and
// the raw payload (message-level decoding is the caller's business).
type Frame struct {
	Op      Op
	ReqID   uint32
	Payload []byte
}

// Framing errors. ErrBadFrame wraps every header-validation failure so
// transports can distinguish protocol corruption from io errors.
var ErrBadFrame = errors.New("wire: bad frame")

// AppendFrame appends the encoded frame to buf and returns the
// extended slice — the allocation-free path used by buffered writers.
func AppendFrame(buf []byte, f Frame) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, Magic)
	buf = append(buf, Version, uint8(f.Op))
	buf = binary.LittleEndian.AppendUint16(buf, 0) // flags
	buf = binary.LittleEndian.AppendUint32(buf, f.ReqID)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.Payload)))
	return append(buf, f.Payload...)
}

// WriteFrame encodes and writes one frame.
func WriteFrame(w io.Writer, f Frame) error {
	if uint64(len(f.Payload)) > uint64(MaxPayload) {
		return fmt.Errorf("%w: payload %d exceeds %d-byte cap", ErrBadFrame, len(f.Payload), MaxPayload)
	}
	_, err := w.Write(AppendFrame(make([]byte, 0, HeaderSize+len(f.Payload)), f))
	return err
}

// ParseHeader validates a 16-byte frame header and returns the op,
// request id and payload length.
func ParseHeader(h []byte) (op Op, reqID, n uint32, err error) {
	if len(h) < HeaderSize {
		return 0, 0, 0, fmt.Errorf("%w: short header (%d bytes)", ErrBadFrame, len(h))
	}
	if got := binary.LittleEndian.Uint32(h[0:4]); got != Magic {
		return 0, 0, 0, fmt.Errorf("%w: magic %#x, want %#x", ErrBadFrame, got, Magic)
	}
	if h[4] != Version {
		return 0, 0, 0, fmt.Errorf("%w: protocol version %d, this build speaks %d", ErrBadFrame, h[4], Version)
	}
	op = Op(h[5])
	if !knownOp(op) {
		return 0, 0, 0, fmt.Errorf("%w: unknown op %d", ErrBadFrame, h[5])
	}
	if flags := binary.LittleEndian.Uint16(h[6:8]); flags != 0 {
		return 0, 0, 0, fmt.Errorf("%w: reserved flags %#x set", ErrBadFrame, flags)
	}
	reqID = binary.LittleEndian.Uint32(h[8:12])
	n = binary.LittleEndian.Uint32(h[12:16])
	if n > MaxPayload {
		return 0, 0, 0, fmt.Errorf("%w: payload length %d exceeds %d-byte cap", ErrBadFrame, n, MaxPayload)
	}
	return op, reqID, n, nil
}

// ReadFrame reads and validates one frame. The returned payload is
// freshly allocated and does not alias any internal buffer. An EOF at
// a frame boundary is io.EOF; a truncated frame is
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (Frame, error) {
	var h [HeaderSize]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Frame{}, fmt.Errorf("%w: truncated header: %v", ErrBadFrame, err)
		}
		return Frame{}, err
	}
	op, reqID, n, err := ParseHeader(h[:])
	if err != nil {
		return Frame{}, err
	}
	f := Frame{Op: op, ReqID: reqID}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, fmt.Errorf("%w: truncated payload (want %d bytes): %v", ErrBadFrame, n, err)
		}
	}
	return f, nil
}

// Decode parses one frame from the front of b and returns it plus the
// number of bytes consumed — the slice-level twin of ReadFrame used by
// the fuzzer and by transports that batch reads.
func Decode(b []byte) (Frame, int, error) {
	if len(b) < HeaderSize {
		return Frame{}, 0, fmt.Errorf("%w: short header (%d bytes)", ErrBadFrame, len(b))
	}
	op, reqID, n, err := ParseHeader(b[:HeaderSize])
	if err != nil {
		return Frame{}, 0, err
	}
	if uint64(len(b)-HeaderSize) < uint64(n) {
		return Frame{}, 0, fmt.Errorf("%w: truncated payload (%d of %d bytes)", ErrBadFrame, len(b)-HeaderSize, n)
	}
	f := Frame{Op: op, ReqID: reqID}
	if n > 0 {
		f.Payload = append([]byte(nil), b[HeaderSize:HeaderSize+int(n)]...)
	}
	return f, HeaderSize + int(n), nil
}
