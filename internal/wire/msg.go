package wire

import (
	"fmt"

	"repro/internal/snap"
)

// Message-level caps. Payload lengths are already bounded by
// MaxPayload; these bound the element counts a decoder will allocate
// for, so a small hostile payload cannot claim a huge count.
const (
	// MaxRegisters bounds a register-peek response.
	MaxRegisters = 4096
	// MaxTraceEvents bounds a trace response window.
	MaxTraceEvents = 1 << 20
	// maxString bounds any single string field (session ids, state
	// names, machine/edge names, error messages).
	maxString = 1 << 16
)

// NackCode classifies an error response; the mapping mirrors the
// HTTP control plane's status codes so both planes share one
// backpressure and lifecycle contract.
type NackCode uint16

const (
	// NackBadRequest is a malformed or invalid request (HTTP 400).
	NackBadRequest NackCode = 1
	// NackBackpressure reports a full session table or step run-queue;
	// the client should back off and retry (HTTP 429).
	NackBackpressure NackCode = 2
	// NackDraining reports a server shutting down (HTTP 503).
	NackDraining NackCode = 3
	// NackNotFound reports an unknown or evicted session (HTTP 404).
	NackNotFound NackCode = 4
	// NackConflict reports an operation invalid in the session's
	// current state (HTTP 409).
	NackConflict NackCode = 5
	// NackInternal is an isolated server-side failure (HTTP 500).
	NackInternal NackCode = 6
)

func (c NackCode) String() string {
	switch c {
	case NackBadRequest:
		return "bad-request"
	case NackBackpressure:
		return "backpressure"
	case NackDraining:
		return "draining"
	case NackNotFound:
		return "not-found"
	case NackConflict:
		return "conflict"
	case NackInternal:
		return "internal"
	}
	return fmt.Sprintf("nack(%d)", uint16(c))
}

// Nack is the error response to any request.
type Nack struct {
	Code NackCode
	Msg  string
}

// NackError is the client-side error a Nack decodes into.
type NackError struct {
	Code NackCode
	Msg  string
}

func (e *NackError) Error() string { return fmt.Sprintf("wire: %s: %s", e.Code, e.Msg) }

// Reg is one named architectural register value (the wire twin of
// runner.Reg; this package stays free of the simulator tree so thin
// clients do not link it).
type Reg struct {
	Name  string
	Value uint32
}

// Event is one recorded OSM transition (the wire twin of osm.Event).
type Event struct {
	Step    uint64
	Machine string
	Edge    string
	From    string
	To      string
}

// HelloRequest opens a connection conversationally: the client names
// itself, the server answers with its banner. Purely informational —
// version enforcement happens on every frame header.
type HelloRequest struct {
	Client string
}

// HelloResponse answers a hello.
type HelloResponse struct {
	Server string
	// MaxPayload echoes the server's frame payload cap.
	MaxPayload uint32
}

// StepRequest advances a session up to Cycles cycles.
type StepRequest struct {
	Session string
	Cycles  uint64
	// DeadlineMS bounds the request's wall time (0 = server default).
	DeadlineMS uint64
}

// StepResponse reports one step request; mirrors the HTTP StepResult.
type StepResponse struct {
	Stepped          uint64
	Cycle            uint64
	Done             bool
	DeadlineExceeded bool
	State            string
	// HasResult marks a completed run; Instrs/Reported are only
	// meaningful when it is set.
	HasResult bool
	Instrs    uint64
	Reported  []uint32
}

// RegistersRequest peeks a session's architectural registers.
type RegistersRequest struct {
	Session string
}

// RegistersResponse carries the named register values.
type RegistersResponse struct {
	Cycle uint64
	Regs  []Reg
}

// MemRequest peeks simulated memory.
type MemRequest struct {
	Session string
	Addr    uint32
	Len     uint32
}

// MemResponse carries the copied range.
type MemResponse struct {
	Addr uint32
	Data []byte
}

// TraceRequest pulls the retained trace window with Step >= Since.
type TraceRequest struct {
	Session string
	Since   uint64
}

// TraceResponse carries the window plus the whole-run aggregates, so
// trace identity (count + order-dependent checksum) is one request.
type TraceResponse struct {
	Total    uint64
	Checksum uint64
	Events   []Event
}

// ---- encoding ----
//
// Every message encodes with the snap codec: fixed-width
// little-endian integers and length-prefixed strings. Decoders are
// total: they check the sticky reader error and full consumption, and
// bound every element count before allocating.

func (m *HelloRequest) Encode() []byte {
	w := snap.NewWriter()
	w.String(m.Client)
	return w.Bytes()
}

func (m *HelloRequest) Decode(b []byte) error {
	r := snap.NewReader(b)
	m.Client = boundedString(r)
	return r.Close("wire hello request")
}

func (m *HelloResponse) Encode() []byte {
	w := snap.NewWriter()
	w.String(m.Server)
	w.U32(m.MaxPayload)
	return w.Bytes()
}

func (m *HelloResponse) Decode(b []byte) error {
	r := snap.NewReader(b)
	m.Server = boundedString(r)
	m.MaxPayload = r.U32()
	return r.Close("wire hello response")
}

func (m *StepRequest) Encode() []byte {
	w := snap.NewWriter()
	w.String(m.Session)
	w.U64(m.Cycles)
	w.U64(m.DeadlineMS)
	return w.Bytes()
}

func (m *StepRequest) Decode(b []byte) error {
	r := snap.NewReader(b)
	m.Session = boundedString(r)
	m.Cycles = r.U64()
	m.DeadlineMS = r.U64()
	return r.Close("wire step request")
}

func (m *StepResponse) Encode() []byte {
	w := snap.NewWriter()
	w.U64(m.Stepped)
	w.U64(m.Cycle)
	w.Bool(m.Done)
	w.Bool(m.DeadlineExceeded)
	w.String(m.State)
	w.Bool(m.HasResult)
	w.U64(m.Instrs)
	w.U32(uint32(len(m.Reported)))
	for _, v := range m.Reported {
		w.U32(v)
	}
	return w.Bytes()
}

func (m *StepResponse) Decode(b []byte) error {
	r := snap.NewReader(b)
	m.Stepped = r.U64()
	m.Cycle = r.U64()
	m.Done = r.Bool()
	m.DeadlineExceeded = r.Bool()
	m.State = boundedString(r)
	m.HasResult = r.Bool()
	m.Instrs = r.U64()
	n := boundedCount(r, MaxRegisters, 4, "reported values")
	for i := 0; i < n; i++ {
		m.Reported = append(m.Reported, r.U32())
	}
	return r.Close("wire step response")
}

func (m *RegistersRequest) Encode() []byte {
	w := snap.NewWriter()
	w.String(m.Session)
	return w.Bytes()
}

func (m *RegistersRequest) Decode(b []byte) error {
	r := snap.NewReader(b)
	m.Session = boundedString(r)
	return r.Close("wire registers request")
}

func (m *RegistersResponse) Encode() []byte {
	w := snap.NewWriter()
	w.U64(m.Cycle)
	w.U32(uint32(len(m.Regs)))
	for _, rg := range m.Regs {
		w.String(rg.Name)
		w.U32(rg.Value)
	}
	return w.Bytes()
}

func (m *RegistersResponse) Decode(b []byte) error {
	r := snap.NewReader(b)
	m.Cycle = r.U64()
	n := boundedCount(r, MaxRegisters, 8, "registers")
	for i := 0; i < n; i++ {
		m.Regs = append(m.Regs, Reg{Name: boundedString(r), Value: r.U32()})
	}
	return r.Close("wire registers response")
}

func (m *MemRequest) Encode() []byte {
	w := snap.NewWriter()
	w.String(m.Session)
	w.U32(m.Addr)
	w.U32(m.Len)
	return w.Bytes()
}

func (m *MemRequest) Decode(b []byte) error {
	r := snap.NewReader(b)
	m.Session = boundedString(r)
	m.Addr = r.U32()
	m.Len = r.U32()
	return r.Close("wire mem request")
}

func (m *MemResponse) Encode() []byte {
	w := snap.NewWriter()
	w.U32(m.Addr)
	w.Bytes32(m.Data)
	return w.Bytes()
}

func (m *MemResponse) Decode(b []byte) error {
	r := snap.NewReader(b)
	m.Addr = r.U32()
	m.Data = r.Bytes32()
	return r.Close("wire mem response")
}

func (m *TraceRequest) Encode() []byte {
	w := snap.NewWriter()
	w.String(m.Session)
	w.U64(m.Since)
	return w.Bytes()
}

func (m *TraceRequest) Decode(b []byte) error {
	r := snap.NewReader(b)
	m.Session = boundedString(r)
	m.Since = r.U64()
	return r.Close("wire trace request")
}

func (m *TraceResponse) Encode() []byte {
	w := snap.NewWriter()
	w.U64(m.Total)
	w.U64(m.Checksum)
	w.U32(uint32(len(m.Events)))
	for _, e := range m.Events {
		w.U64(e.Step)
		w.String(e.Machine)
		w.String(e.Edge)
		w.String(e.From)
		w.String(e.To)
	}
	return w.Bytes()
}

func (m *TraceResponse) Decode(b []byte) error {
	r := snap.NewReader(b)
	m.Total = r.U64()
	m.Checksum = r.U64()
	n := boundedCount(r, MaxTraceEvents, 8+4*4, "trace events")
	for i := 0; i < n; i++ {
		m.Events = append(m.Events, Event{
			Step:    r.U64(),
			Machine: boundedString(r),
			Edge:    boundedString(r),
			From:    boundedString(r),
			To:      boundedString(r),
		})
	}
	return r.Close("wire trace response")
}

func (m *Nack) Encode() []byte {
	w := snap.NewWriter()
	w.U16(uint16(m.Code))
	w.String(m.Msg)
	return w.Bytes()
}

func (m *Nack) Decode(b []byte) error {
	r := snap.NewReader(b)
	m.Code = NackCode(r.U16())
	m.Msg = boundedString(r)
	return r.Close("wire nack")
}

// boundedString reads a length-prefixed string, failing the reader if
// the decoded length exceeds the per-field cap (the snap reader
// already bounds it to the remaining payload).
func boundedString(r *snap.Reader) string {
	s := r.String()
	if len(s) > maxString {
		r.Failf("wire: string field of %d bytes exceeds the %d-byte cap", len(s), maxString)
		return ""
	}
	return s
}

// boundedCount reads an element count and validates it against both
// the message cap and the bytes actually remaining (minSize bytes per
// element), so decoders never allocate on the strength of a
// wire-claimed count alone.
func boundedCount(r *snap.Reader, max, minSize int, what string) int {
	n := int(r.U32())
	if r.Err() != nil {
		return 0
	}
	if n > max || n*minSize > r.Remaining() {
		r.Failf("wire: implausible %s count %d (%d bytes remaining)", what, n, r.Remaining())
		return 0
	}
	return n
}
