package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzFrame is the untrusted-decoder fuzz target for the binary
// protocol, per the repo rule that every decoder facing hostile bytes
// gets a native fuzz leg in CI. It walks the input as a frame stream
// with both decoders and asserts the protocol's safety contract:
//
//   - no panic, ever (snap's sticky-error reader must hold);
//   - ReadFrame and Decode agree frame by frame (same op, id,
//     payload, same accept/reject decision);
//   - every accepted frame re-encodes to the exact bytes consumed
//     (the codec is canonical);
//   - every accepted frame's payload survives the op's message
//     decoder without panicking, and a successfully decoded message
//     round-trips byte-identically.
func FuzzFrame(f *testing.F) {
	// One well-formed frame per op, a nack, an empty-payload frame, a
	// two-frame stream, plus header mutations the unit tests cover.
	add := func(fr Frame) {
		f.Add(AppendFrame(nil, fr))
	}
	add(Frame{Op: OpHello, ReqID: 1, Payload: (&HelloRequest{Client: "fuzz"}).Encode()})
	add(Frame{Op: OpHello, ReqID: 2, Payload: (&HelloResponse{Server: "osmserve", MaxPayload: MaxPayload}).Encode()})
	add(Frame{Op: OpStep, ReqID: 3, Payload: (&StepRequest{Session: "s-000001", Cycles: 10_000, DeadlineMS: 50}).Encode()})
	add(Frame{Op: OpStep, ReqID: 4, Payload: (&StepResponse{Stepped: 10, Cycle: 99, Done: true, State: "done", HasResult: true, Instrs: 5, Reported: []uint32{1, 2}}).Encode()})
	add(Frame{Op: OpRegisters, ReqID: 5, Payload: (&RegistersResponse{Cycle: 7, Regs: []Reg{{Name: "r0", Value: 42}}}).Encode()})
	add(Frame{Op: OpMem, ReqID: 6, Payload: (&MemRequest{Session: "s-1", Addr: 0x8000, Len: 64}).Encode()})
	add(Frame{Op: OpTrace, ReqID: 7, Payload: (&TraceResponse{Total: 3, Checksum: 0xbeef, Events: []Event{{Step: 1, Machine: "m", Edge: "e", From: "a", To: "b"}}}).Encode()})
	add(Frame{Op: OpNack, ReqID: 8, Payload: (&Nack{Code: NackBackpressure, Msg: "full"}).Encode()})
	add(Frame{Op: OpTrace, ReqID: 9})
	f.Add(append(
		AppendFrame(nil, Frame{Op: OpStep, ReqID: 1, Payload: (&StepRequest{Session: "a", Cycles: 1}).Encode()}),
		AppendFrame(nil, Frame{Op: OpRegisters, ReqID: 2, Payload: (&RegistersRequest{Session: "a"}).Encode()})...))
	f.Add([]byte{})
	f.Add([]byte("not a frame at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		rd := bytes.NewReader(data)
		for {
			sf, n, sliceErr := Decode(rest)
			rf, readErr := ReadFrame(rd)
			if sliceErr != nil {
				// The stream decoder must reject too (clean EOF on an
				// exhausted stream is the one disagreement allowed).
				if readErr == nil {
					t.Fatalf("Decode rejected (%v) but ReadFrame accepted %+v", sliceErr, rf)
				}
				if len(rest) == 0 && readErr != io.EOF {
					t.Fatalf("empty tail: ReadFrame err = %v, want io.EOF", readErr)
				}
				return
			}
			if readErr != nil {
				t.Fatalf("ReadFrame rejected (%v) but Decode accepted %+v", readErr, sf)
			}
			if sf.Op != rf.Op || sf.ReqID != rf.ReqID || !bytes.Equal(sf.Payload, rf.Payload) {
				t.Fatalf("decoders disagree: Decode %+v, ReadFrame %+v", sf, rf)
			}
			// Canonical re-encode.
			if got := AppendFrame(nil, sf); !bytes.Equal(got, rest[:n]) {
				t.Fatalf("re-encode differs:\n got %x\nwant %x", got, rest[:n])
			}
			fuzzPayload(t, sf)
			rest = rest[n:]
		}
	})
}

// fuzzPayload feeds the frame's payload to the message decoders that
// could legitimately receive it; they must not panic, and an accepted
// message must re-encode byte-identically.
func fuzzPayload(t *testing.T, f Frame) {
	check := func(m interface {
		Encode() []byte
		Decode([]byte) error
	}) {
		if err := m.Decode(f.Payload); err == nil {
			if !bytes.Equal(m.Encode(), f.Payload) {
				t.Fatalf("%T: accepted payload re-encodes differently (%x)", m, f.Payload)
			}
		}
	}
	switch f.Op {
	case OpHello:
		check(&HelloRequest{})
		check(&HelloResponse{})
	case OpStep:
		check(&StepRequest{})
		check(&StepResponse{})
	case OpRegisters:
		check(&RegistersRequest{})
		check(&RegistersResponse{})
	case OpMem:
		check(&MemRequest{})
		check(&MemResponse{})
	case OpTrace:
		check(&TraceRequest{})
		check(&TraceResponse{})
	case OpNack:
		check(&Nack{})
	}
}
