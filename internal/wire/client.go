package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// ErrClosed reports a request issued on (or interrupted by) a closed
// client.
var ErrClosed = errors.New("wire: client closed")

// Client drives the binary protocol over one connection. It is safe
// for concurrent use: requests are stamped with fresh ids, writes are
// serialized through one buffered writer, and a single reader
// goroutine routes responses back by id — so many goroutines (or many
// sessions) can share one connection without head-of-line blocking on
// the server side.
type Client struct {
	conn net.Conn

	// Timeout bounds each request round trip (0 = no timeout).
	Timeout time.Duration

	wmu sync.Mutex // serializes writes; guards bw
	bw  *bufio.Writer

	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]chan Frame
	err     error // set once the reader loop exits
	closed  bool

	readerDone chan struct{}
}

// Dial connects to a wire listener: a host:port TCP address, or a
// unix-domain socket path given as "unix:/path/to.sock" (the lowest
// round-trip latency for same-host clients).
func Dial(addr string) (*Client, error) {
	network := "tcp"
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		network, addr = "unix", path
	}
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (any net.Conn: TCP, unix
// socket, net.Pipe in tests) and starts the response router.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:       conn,
		bw:         bufio.NewWriter(conn),
		pending:    make(map[uint32]chan Frame),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// RemoteAddr returns the server address the client is connected to.
func (c *Client) RemoteAddr() string { return c.conn.RemoteAddr().String() }

// Close tears the connection down; in-flight requests fail with
// ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// readLoop routes response frames to their waiting requests. On any
// read error every pending request fails and the client is dead.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	br := bufio.NewReader(c.conn)
	for {
		f, err := ReadFrame(br)
		if err != nil {
			c.mu.Lock()
			if c.err == nil {
				c.err = err
				if c.closed {
					c.err = ErrClosed
				}
			}
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.ReqID]
		if ok {
			delete(c.pending, f.ReqID)
		}
		c.mu.Unlock()
		if ok {
			ch <- f
		}
		// An unmatched id (request timed out and was abandoned) is
		// dropped; the frame was already fully consumed.
	}
}

// roundTrip sends one request frame and waits for its response.
func (c *Client) roundTrip(op Op, payload []byte) (Frame, error) {
	ch := make(chan Frame, 1)
	c.mu.Lock()
	if c.closed || c.err != nil {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return Frame{}, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := WriteFrame(c.bw, Frame{Op: op, ReqID: id, Payload: payload})
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.abandon(id)
		return Frame{}, err
	}

	var timeout <-chan time.Time
	if c.Timeout > 0 {
		t := time.NewTimer(c.Timeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case f, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			if err == nil {
				err = ErrClosed
			}
			return Frame{}, err
		}
		return f, nil
	case <-timeout:
		c.abandon(id)
		return Frame{}, fmt.Errorf("wire: %s request timed out after %v", op, c.Timeout)
	}
}

func (c *Client) abandon(id uint32) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// RoundTrip sends one raw request frame and returns the raw response
// frame — which may be an OpNack — without decoding the payload. This
// is the forwarding surface: a gateway proxies a client's frame to a
// worker by op and payload alone, stamps its own request id for the
// worker hop, and rewrites the response's id back to the client's
// before relaying, so NACKs (including backpressure) cross the hop
// verbatim.
func (c *Client) RoundTrip(op Op, payload []byte) (Frame, error) {
	return c.roundTrip(op, payload)
}

// decodeResponse checks the response op and decodes either the
// expected message or a Nack.
func decodeResponse(f Frame, wantOp Op, msg interface{ Decode([]byte) error }) error {
	switch f.Op {
	case wantOp:
		return msg.Decode(f.Payload)
	case OpNack:
		var n Nack
		if err := n.Decode(f.Payload); err != nil {
			return fmt.Errorf("wire: undecodable nack: %v", err)
		}
		return &NackError{Code: n.Code, Msg: n.Msg}
	default:
		return fmt.Errorf("wire: response op %s, want %s", f.Op, wantOp)
	}
}

// Hello performs the optional handshake and returns the server's
// response.
func (c *Client) Hello(client string) (HelloResponse, error) {
	req := HelloRequest{Client: client}
	f, err := c.roundTrip(OpHello, req.Encode())
	if err != nil {
		return HelloResponse{}, err
	}
	var resp HelloResponse
	err = decodeResponse(f, OpHello, &resp)
	return resp, err
}

// Step advances the session up to cycles cycles under the server's
// deadline policy (deadline 0 = server default).
func (c *Client) Step(session string, cycles uint64, deadline time.Duration) (StepResponse, error) {
	req := StepRequest{Session: session, Cycles: cycles, DeadlineMS: uint64(deadline / time.Millisecond)}
	f, err := c.roundTrip(OpStep, req.Encode())
	if err != nil {
		return StepResponse{}, err
	}
	var resp StepResponse
	err = decodeResponse(f, OpStep, &resp)
	return resp, err
}

// Registers peeks the session's architectural registers.
func (c *Client) Registers(session string) (RegistersResponse, error) {
	req := RegistersRequest{Session: session}
	f, err := c.roundTrip(OpRegisters, req.Encode())
	if err != nil {
		return RegistersResponse{}, err
	}
	var resp RegistersResponse
	err = decodeResponse(f, OpRegisters, &resp)
	return resp, err
}

// ReadMem peeks n bytes of simulated memory at addr.
func (c *Client) ReadMem(session string, addr, n uint32) (MemResponse, error) {
	req := MemRequest{Session: session, Addr: addr, Len: n}
	f, err := c.roundTrip(OpMem, req.Encode())
	if err != nil {
		return MemResponse{}, err
	}
	var resp MemResponse
	err = decodeResponse(f, OpMem, &resp)
	return resp, err
}

// Trace pulls the retained trace window with Step >= since plus the
// whole-run totals.
func (c *Client) Trace(session string, since uint64) (TraceResponse, error) {
	req := TraceRequest{Session: session, Since: since}
	f, err := c.roundTrip(OpTrace, req.Encode())
	if err != nil {
		return TraceResponse{}, err
	}
	var resp TraceResponse
	err = decodeResponse(f, OpTrace, &resp)
	return resp, err
}
