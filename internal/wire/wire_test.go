package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Op: OpHello, ReqID: 1, Payload: (&HelloRequest{Client: "test"}).Encode()},
		{Op: OpStep, ReqID: 0xdeadbeef, Payload: (&StepRequest{Session: "s-000001", Cycles: 500}).Encode()},
		{Op: OpNack, ReqID: 7, Payload: (&Nack{Code: NackConflict, Msg: "nope"}).Encode()},
		{Op: OpTrace, ReqID: 9}, // empty payload
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	stream := buf.Bytes()
	// Reader-based decode.
	r := bytes.NewReader(stream)
	for i, want := range frames {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Op != want.Op || got.ReqID != want.ReqID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("trailing read: %v, want io.EOF", err)
	}
	// Slice-based decode must walk the same stream identically.
	rest := stream
	for i, want := range frames {
		got, n, err := Decode(rest)
		if err != nil {
			t.Fatalf("Decode frame %d: %v", i, err)
		}
		if got.Op != want.Op || got.ReqID != want.ReqID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("Decode frame %d: got %+v, want %+v", i, got, want)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d undecoded bytes", len(rest))
	}
}

// corrupt returns a valid single-frame stream with one mutation
// applied.
func corrupt(t *testing.T, mutate func(b []byte)) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Op: OpStep, ReqID: 3, Payload: []byte{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	mutate(b)
	return b
}

func TestFrameHeaderValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(b []byte)
		want   string
	}{
		{"bad magic", func(b []byte) { b[0] ^= 0xff }, "magic"},
		{"bad version", func(b []byte) { b[4] = 99 }, "version"},
		{"unknown op", func(b []byte) { b[5] = 0x6f }, "unknown op"},
		{"reserved flags", func(b []byte) { b[6] = 1 }, "flags"},
		{"oversized length", func(b []byte) {
			binary.LittleEndian.PutUint32(b[12:16], MaxPayload+1)
		}, "cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := corrupt(t, tc.mutate)
			_, err := ReadFrame(bytes.NewReader(b))
			if err == nil || !errors.Is(err, ErrBadFrame) {
				t.Fatalf("err = %v, want ErrBadFrame", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err %q does not mention %q", err, tc.want)
			}
			if _, _, err := Decode(b); err == nil || !errors.Is(err, ErrBadFrame) {
				t.Fatalf("Decode err = %v, want ErrBadFrame", err)
			}
		})
	}
}

func TestFrameTruncation(t *testing.T) {
	b := corrupt(t, func([]byte) {})
	for cut := 1; cut < len(b); cut++ {
		if _, err := ReadFrame(bytes.NewReader(b[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if _, _, err := Decode(b[:cut]); err == nil || !errors.Is(err, ErrBadFrame) {
			t.Fatalf("Decode truncation at %d: err = %v", cut, err)
		}
	}
	// Empty stream is a clean EOF (frame boundary), not corruption.
	if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
}

func TestMessageRoundTrips(t *testing.T) {
	type codec interface {
		Encode() []byte
		Decode([]byte) error
	}
	step := StepResponse{
		Stepped: 100, Cycle: 12345, Done: true, State: "done",
		HasResult: true, Instrs: 99, Reported: []uint32{0xaa, 0xbb},
	}
	regs := RegistersResponse{Cycle: 9, Regs: []Reg{{Name: "r0", Value: 1}, {Name: "nzcv", Value: 0xf0000000}}}
	trace := TraceResponse{Total: 1e6, Checksum: 0xfeedface, Events: []Event{
		{Step: 1, Machine: "pipe", Edge: "fetch", From: "idle", To: "busy"},
	}}
	pairs := []struct {
		in, out codec
	}{
		{&HelloRequest{Client: "osmwire"}, &HelloRequest{}},
		{&HelloResponse{Server: "osmserve", MaxPayload: MaxPayload}, &HelloResponse{}},
		{&StepRequest{Session: "s-000001", Cycles: 1 << 40, DeadlineMS: 250}, &StepRequest{}},
		{&step, &StepResponse{}},
		{&RegistersRequest{Session: "s-1"}, &RegistersRequest{}},
		{&regs, &RegistersResponse{}},
		{&MemRequest{Session: "s-1", Addr: 0x1000, Len: 64}, &MemRequest{}},
		{&MemResponse{Addr: 0x1000, Data: []byte{1, 0, 2}}, &MemResponse{}},
		{&TraceRequest{Session: "s-1", Since: 77}, &TraceRequest{}},
		{&trace, &TraceResponse{}},
		{&Nack{Code: NackBackpressure, Msg: "table full"}, &Nack{}},
	}
	for _, p := range pairs {
		b := p.in.Encode()
		if err := p.out.Decode(b); err != nil {
			t.Fatalf("%T: decode: %v", p.in, err)
		}
		if got, want := p.out.Encode(), b; !bytes.Equal(got, want) {
			t.Fatalf("%T: re-encode differs:\n got %x\nwant %x", p.in, got, want)
		}
	}
}

func TestMessageDecodeRejectsTrailingGarbage(t *testing.T) {
	b := append((&StepRequest{Session: "s", Cycles: 1}).Encode(), 0xff)
	var m StepRequest
	if err := m.Decode(b); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing garbage: %v", err)
	}
}

func TestMessageDecodeBoundsCounts(t *testing.T) {
	// A registers response claiming 2^31 registers with a tiny payload
	// must fail without allocating.
	w := (&RegistersResponse{Cycle: 1}).Encode()
	binary.LittleEndian.PutUint32(w[8:12], 1<<31-1)
	var m RegistersResponse
	if err := m.Decode(w); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Fatalf("huge count: %v", err)
	}
	// Same for trace events.
	tr := (&TraceResponse{}).Encode()
	binary.LittleEndian.PutUint32(tr[16:20], 1<<30)
	var tm TraceResponse
	if err := tm.Decode(tr); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Fatalf("huge event count: %v", err)
	}
}

// echoServer answers every request with a canned frame per op over a
// net.Pipe — enough to exercise the client's multiplexing without the
// real server.
func echoServer(t *testing.T, conn net.Conn, delay func(op Op) time.Duration) {
	t.Helper()
	var wmu sync.Mutex
	go func() {
		for {
			f, err := ReadFrame(conn)
			if err != nil {
				return
			}
			go func(f Frame) {
				if delay != nil {
					time.Sleep(delay(f.Op))
				}
				var payload []byte
				switch f.Op {
				case OpHello:
					payload = (&HelloResponse{Server: "echo", MaxPayload: MaxPayload}).Encode()
				case OpStep:
					var req StepRequest
					if err := req.Decode(f.Payload); err != nil {
						f.Op = OpNack
						payload = (&Nack{Code: NackBadRequest, Msg: err.Error()}).Encode()
						break
					}
					payload = (&StepResponse{Stepped: req.Cycles, Cycle: req.Cycles, State: "paused"}).Encode()
				case OpRegisters:
					payload = (&RegistersResponse{Cycle: 1, Regs: []Reg{{Name: "r0", Value: 42}}}).Encode()
				default:
					f.Op = OpNack
					payload = (&Nack{Code: NackNotFound, Msg: "no such session"}).Encode()
				}
				wmu.Lock()
				err := WriteFrame(conn, Frame{Op: f.Op, ReqID: f.ReqID, Payload: payload})
				wmu.Unlock()
				if err != nil {
					t.Errorf("echo write: %v", err)
				}
			}(f)
		}
	}()
}

func TestClientMultiplexing(t *testing.T) {
	cc, sc := net.Pipe()
	// Delay step responses so register peeks issued later come back
	// first: the client must route by request id, not arrival order.
	echoServer(t, sc, func(op Op) time.Duration {
		if op == OpStep {
			return 30 * time.Millisecond
		}
		return 0
	})
	cl := NewClient(cc)
	defer cl.Close()

	type stepOut struct {
		resp StepResponse
		err  error
	}
	stepCh := make(chan stepOut, 1)
	go func() {
		resp, err := cl.Step("s-1", 777, 0)
		stepCh <- stepOut{resp, err}
	}()
	// The peek must complete while the step is still pending.
	regs, err := cl.Registers("s-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(regs.Regs) != 1 || regs.Regs[0].Value != 42 {
		t.Fatalf("registers: %+v", regs)
	}
	out := <-stepCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.resp.Stepped != 777 {
		t.Fatalf("step response %+v", out.resp)
	}
	// A nack decodes into a typed error.
	_, err = cl.Trace("s-1", 0)
	var ne *NackError
	if !errors.As(err, &ne) || ne.Code != NackNotFound {
		t.Fatalf("trace err = %v, want NackNotFound", err)
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	cc, sc := net.Pipe()
	// A server that reads but never answers.
	go func() {
		for {
			if _, err := ReadFrame(sc); err != nil {
				return
			}
		}
	}()
	cl := NewClient(cc)
	errCh := make(chan error, 1)
	go func() {
		_, err := cl.Step("s-1", 1, 0)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cl.Close()
	if err := <-errCh; !errors.Is(err, ErrClosed) {
		t.Fatalf("pending request after Close: %v, want ErrClosed", err)
	}
	if _, err := cl.Registers("s-1"); !errors.Is(err, ErrClosed) {
		t.Fatalf("request on closed client: %v, want ErrClosed", err)
	}
}

func TestClientTimeout(t *testing.T) {
	cc, sc := net.Pipe()
	go func() {
		for {
			if _, err := ReadFrame(sc); err != nil {
				return
			}
		}
	}()
	cl := NewClient(cc)
	defer cl.Close()
	cl.Timeout = 20 * time.Millisecond
	if _, err := cl.Step("s-1", 1, 0); err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("timeout: %v", err)
	}
}
