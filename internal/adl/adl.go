// Package adl implements the architecture description language the
// paper names as its next step: "to devise an architecture
// description language based on the OSM model and to implement a
// retargetable microprocessor modeling framework" (Section 7).
//
// Because the OSM specification is purely declarative — states, edges
// and token-transaction conditions — everything except operation
// semantics can be written as text and synthesized into a runnable
// model. A description looks like:
//
//	model pipeline {
//	  managers {
//	    unit    IF(1); unit ID(1); unit EX(1);
//	    regfile RF(16);
//	    reset   RESET;
//	    pool    FQ(6);
//	    queue   CQ(6);
//	  }
//	  states { I*, F, D, E }
//	  edges {
//	    e0: I -> F [ alloc IF.0 ];
//	    e1: F -> D [ release IF.0, alloc ID.0 ];
//	    e2: D -> E [ release ID.0, alloc EX.0,
//	                 inquire RF.$src, alloc RF.!$dst ];
//	    e3: E -> I [ release EX.0, release RF.!$dst ];
//	    r0: F -> I reset;
//	  }
//	  machines 6;
//	}
//
// Manager kinds map to the reusable token-manager library of package
// osm. Identifiers take three forms: a number (fixed unit), `*` (any
// unit) or `$name` (dynamic — resolved through a host-registered
// binding function, the "decode initializes the identifiers" step of
// the paper's Section 4). A `!` prefix addresses a register-update
// token of a regfile manager. Edges are prioritized in source order;
// an edge marked `reset` becomes a canonical high-priority reset edge
// (inquire the named reset manager — by default the sole reset
// manager — and discard all tokens). Operation semantics attach from
// the host side via Model.OnEdge and Model.OnWhen.
package adl

import "fmt"

// Position locates an error in the source text.
type Position struct {
	Line, Col int
}

func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a parse or elaboration error with its position.
type Error struct {
	Pos Position
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("adl: %s: %s", e.Pos, e.Msg) }

func errf(pos Position, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// ManagerKind enumerates the manager types a description may declare.
type ManagerKind int

// Manager kinds, mapping onto the osm package's reusable library.
const (
	KindUnit ManagerKind = iota
	KindRegFile
	KindPool
	KindQueue
	KindReset
	KindBypass
)

var kindNames = map[string]ManagerKind{
	"unit": KindUnit, "regfile": KindRegFile, "pool": KindPool,
	"queue": KindQueue, "reset": KindReset, "bypass": KindBypass,
}

func (k ManagerKind) String() string {
	for n, v := range kindNames {
		if v == k {
			return n
		}
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ManagerDecl declares one token manager.
type ManagerDecl struct {
	Pos  Position
	Kind ManagerKind
	Name string
	// Arg is the unit/register/entry count (unused for reset and
	// bypass managers).
	Arg int
}

// PrimOp enumerates the Λ primitives in descriptions.
type PrimOp int

// Primitive operations.
const (
	PrimAlloc PrimOp = iota
	PrimInquire
	PrimRelease
	PrimDiscard
)

var primNames = map[string]PrimOp{
	"alloc": PrimAlloc, "inquire": PrimInquire,
	"release": PrimRelease, "discard": PrimDiscard,
}

// IDForm distinguishes the identifier syntaxes.
type IDForm int

// Identifier forms.
const (
	IDFixed IDForm = iota // N
	IDAny                 // *
	IDBound               // $name
)

// PrimDecl is one conjunct of an edge condition.
type PrimDecl struct {
	Pos     Position
	Op      PrimOp
	Manager string
	Form    IDForm
	Fixed   int64
	Binding string
	// Update addresses a regfile update token (`!` prefix).
	Update bool
	// All marks `discard *` with no manager (drop the whole buffer).
	All bool
}

// EdgeDecl is one transition.
type EdgeDecl struct {
	Pos      Position
	Name     string
	From, To string
	Reset    bool
	Prims    []PrimDecl
}

// Spec is a parsed description.
type Spec struct {
	Name     string
	Managers []ManagerDecl
	States   []string
	Initial  string
	Edges    []EdgeDecl
	Machines int
}
