package adl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct // single-rune punctuation: { } ( ) [ ] ; , : . * $ !
	tokArrow // ->
)

type token struct {
	kind tokKind
	text string
	pos  Position
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer tokenizes a description. Comments run from // to end of line.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) pos() Position { return Position{Line: l.line, Col: l.col} }

func (l *lexer) peekRune() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpace() {
	for l.off < len(l.src) {
		c := l.peekRune()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance()
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '/':
			for l.off < len(l.src) && l.peekRune() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentRune(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the following token.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token{kind: tokEOF, pos: pos}, nil
	}
	c := l.peekRune()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentRune(l.peekRune()) {
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[start:l.off], pos: pos}, nil
	case unicode.IsDigit(rune(c)):
		start := l.off
		for l.off < len(l.src) && (isIdentRune(l.peekRune())) {
			l.advance()
		}
		return token{kind: tokNumber, text: l.src[start:l.off], pos: pos}, nil
	case c == '-':
		l.advance()
		if l.peekRune() == '>' {
			l.advance()
			return token{kind: tokArrow, text: "->", pos: pos}, nil
		}
		return token{}, errf(pos, "unexpected '-'")
	case strings.ContainsRune("{}()[];,:.*$!", rune(c)):
		l.advance()
		return token{kind: tokPunct, text: string(c), pos: pos}, nil
	}
	return token{}, errf(pos, "unexpected character %q", c)
}
