package adl

import (
	"fmt"
	"strings"
)

// Format renders a Spec back to description syntax. Parsing the
// result yields an equivalent Spec, so models can be round-tripped
// between programmatic construction and text.
func Format(spec *Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "model %s {\n", spec.Name)

	if len(spec.Managers) > 0 {
		b.WriteString("  managers {\n")
		for _, m := range spec.Managers {
			switch m.Kind {
			case KindReset, KindBypass:
				fmt.Fprintf(&b, "    %s %s;\n", m.Kind, m.Name)
			default:
				fmt.Fprintf(&b, "    %s %s(%d);\n", m.Kind, m.Name, m.Arg)
			}
		}
		b.WriteString("  }\n")
	}

	b.WriteString("  states { ")
	for i, s := range spec.States {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s)
		if s == spec.Initial {
			b.WriteString("*")
		}
	}
	b.WriteString(" }\n")

	if len(spec.Edges) > 0 {
		b.WriteString("  edges {\n")
		for _, e := range spec.Edges {
			fmt.Fprintf(&b, "    %s: %s -> %s", e.Name, e.From, e.To)
			if e.Reset {
				b.WriteString(" reset")
			}
			if len(e.Prims) > 0 {
				b.WriteString(" [ ")
				for i, p := range e.Prims {
					if i > 0 {
						b.WriteString(", ")
					}
					b.WriteString(formatPrim(p))
				}
				b.WriteString(" ]")
			}
			b.WriteString(";\n")
		}
		b.WriteString("  }\n")
	}

	fmt.Fprintf(&b, "  machines %d;\n", spec.Machines)
	b.WriteString("}\n")
	return b.String()
}

func formatPrim(p PrimDecl) string {
	var op string
	for name, o := range primNames {
		if o == p.Op {
			op = name
			break
		}
	}
	if p.All {
		return op + " *"
	}
	id := ""
	if p.Update {
		id = "!"
	}
	switch p.Form {
	case IDFixed:
		id += fmt.Sprint(p.Fixed)
	case IDAny:
		id += "*"
	case IDBound:
		id += "$" + p.Binding
	}
	return fmt.Sprintf("%s %s.%s", op, p.Manager, id)
}
