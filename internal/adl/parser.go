package adl

import "strconv"

// Parse reads a model description into a Spec, reporting the first
// syntactic or structural error with its position.
func Parse(src string) (*Spec, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	spec, err := p.parseModel()
	if err != nil {
		return nil, err
	}
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	if err := validate(spec); err != nil {
		return nil, err
	}
	return spec, nil
}

type parser struct {
	lx  *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expectEOF() error {
	if p.tok.kind != tokEOF {
		return errf(p.tok.pos, "unexpected %s after model", p.tok)
	}
	return nil
}

func (p *parser) expectIdent(what string) (string, error) {
	if p.tok.kind != tokIdent {
		return "", errf(p.tok.pos, "expected %s, found %s", what, p.tok)
	}
	t := p.tok.text
	return t, p.advance()
}

func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tokIdent || p.tok.text != kw {
		return errf(p.tok.pos, "expected %q, found %s", kw, p.tok)
	}
	return p.advance()
}

func (p *parser) expectPunct(s string) error {
	if (p.tok.kind != tokPunct && p.tok.kind != tokArrow) || p.tok.text != s {
		return errf(p.tok.pos, "expected %q, found %s", s, p.tok)
	}
	return p.advance()
}

func (p *parser) isPunct(s string) bool {
	return (p.tok.kind == tokPunct || p.tok.kind == tokArrow) && p.tok.text == s
}

func (p *parser) expectNumber(what string) (int, error) {
	if p.tok.kind != tokNumber {
		return 0, errf(p.tok.pos, "expected %s, found %s", what, p.tok)
	}
	n, err := strconv.Atoi(p.tok.text)
	if err != nil {
		return 0, errf(p.tok.pos, "bad number %q", p.tok.text)
	}
	return n, p.advance()
}

func (p *parser) parseModel() (*Spec, error) {
	if err := p.expectKeyword("model"); err != nil {
		return nil, err
	}
	spec := &Spec{}
	name, err := p.expectIdent("model name")
	if err != nil {
		return nil, err
	}
	spec.Name = name
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.isPunct("}") {
		section, err := p.expectIdent("section (managers/states/edges/machines)")
		if err != nil {
			return nil, err
		}
		switch section {
		case "managers":
			if err := p.parseManagers(spec); err != nil {
				return nil, err
			}
		case "states":
			if err := p.parseStates(spec); err != nil {
				return nil, err
			}
		case "edges":
			if err := p.parseEdges(spec); err != nil {
				return nil, err
			}
		case "machines":
			n, err := p.expectNumber("machine count")
			if err != nil {
				return nil, err
			}
			spec.Machines = n
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		default:
			return nil, errf(p.tok.pos, "unknown section %q", section)
		}
	}
	return spec, p.advance() // consume closing brace
}

func (p *parser) parseManagers(spec *Spec) error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !p.isPunct("}") {
		pos := p.tok.pos
		kindName, err := p.expectIdent("manager kind")
		if err != nil {
			return err
		}
		kind, ok := kindNames[kindName]
		if !ok {
			return errf(pos, "unknown manager kind %q", kindName)
		}
		name, err := p.expectIdent("manager name")
		if err != nil {
			return err
		}
		decl := ManagerDecl{Pos: pos, Kind: kind, Name: name}
		if p.isPunct("(") {
			if err := p.expectPunct("("); err != nil {
				return err
			}
			n, err := p.expectNumber("manager size")
			if err != nil {
				return err
			}
			decl.Arg = n
			if err := p.expectPunct(")"); err != nil {
				return err
			}
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
		spec.Managers = append(spec.Managers, decl)
	}
	return p.advance()
}

func (p *parser) parseStates(spec *Spec) error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !p.isPunct("}") {
		name, err := p.expectIdent("state name")
		if err != nil {
			return err
		}
		if p.isPunct("*") {
			if spec.Initial != "" {
				return errf(p.tok.pos, "multiple initial states (%q and %q)", spec.Initial, name)
			}
			spec.Initial = name
			if err := p.advance(); err != nil {
				return err
			}
		}
		spec.States = append(spec.States, name)
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return err
			}
		}
	}
	return p.advance()
}

func (p *parser) parseEdges(spec *Spec) error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !p.isPunct("}") {
		pos := p.tok.pos
		name, err := p.expectIdent("edge name")
		if err != nil {
			return err
		}
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		from, err := p.expectIdent("source state")
		if err != nil {
			return err
		}
		if err := p.expectPunct("->"); err != nil {
			return err
		}
		to, err := p.expectIdent("destination state")
		if err != nil {
			return err
		}
		e := EdgeDecl{Pos: pos, Name: name, From: from, To: to}
		if p.tok.kind == tokIdent && p.tok.text == "reset" {
			e.Reset = true
			if err := p.advance(); err != nil {
				return err
			}
		}
		if p.isPunct("[") {
			if err := p.advance(); err != nil {
				return err
			}
			for !p.isPunct("]") {
				prim, err := p.parsePrim()
				if err != nil {
					return err
				}
				e.Prims = append(e.Prims, prim)
				if p.isPunct(",") {
					if err := p.advance(); err != nil {
						return err
					}
				}
			}
			if err := p.advance(); err != nil {
				return err
			}
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
		spec.Edges = append(spec.Edges, e)
	}
	return p.advance()
}

func (p *parser) parsePrim() (PrimDecl, error) {
	pos := p.tok.pos
	opName, err := p.expectIdent("primitive (alloc/inquire/release/discard)")
	if err != nil {
		return PrimDecl{}, err
	}
	op, ok := primNames[opName]
	if !ok {
		return PrimDecl{}, errf(pos, "unknown primitive %q", opName)
	}
	prim := PrimDecl{Pos: pos, Op: op}
	// `discard *` drops the whole token buffer.
	if op == PrimDiscard && p.isPunct("*") {
		prim.All = true
		return prim, p.advance()
	}
	mgr, err := p.expectIdent("manager name")
	if err != nil {
		return PrimDecl{}, err
	}
	prim.Manager = mgr
	if err := p.expectPunct("."); err != nil {
		return PrimDecl{}, err
	}
	if p.isPunct("!") {
		prim.Update = true
		if err := p.advance(); err != nil {
			return PrimDecl{}, err
		}
	}
	switch {
	case p.isPunct("*"):
		prim.Form = IDAny
		return prim, p.advance()
	case p.isPunct("$"):
		if err := p.advance(); err != nil {
			return PrimDecl{}, err
		}
		b, err := p.expectIdent("binding name")
		if err != nil {
			return PrimDecl{}, err
		}
		prim.Form = IDBound
		prim.Binding = b
		return prim, nil
	case p.tok.kind == tokNumber:
		n, err := p.expectNumber("token id")
		if err != nil {
			return PrimDecl{}, err
		}
		prim.Form = IDFixed
		prim.Fixed = int64(n)
		return prim, nil
	}
	return PrimDecl{}, errf(p.tok.pos, "expected token id, '*' or '$name', found %s", p.tok)
}

// Allocation ceilings enforced by validate. Elaborate allocates
// memory proportional to the machine count and to every manager size,
// and descriptions arrive from untrusted sources (runner specs over
// the wire), so both are bounded before any allocation happens.
const (
	MaxMachines    = 1 << 16
	MaxManagerSize = 1 << 20
)

// validate checks cross-references: states/managers named by edges
// exist, an initial state is marked, counts are sane.
func validate(spec *Spec) error {
	if spec.Initial == "" {
		return errf(Position{1, 1}, "model %s: no initial state marked with '*'", spec.Name)
	}
	if spec.Machines <= 0 {
		return errf(Position{1, 1}, "model %s: machines count missing or not positive", spec.Name)
	}
	if spec.Machines > MaxMachines {
		return errf(Position{1, 1}, "model %s: %d machines exceeds the limit of %d",
			spec.Name, spec.Machines, MaxMachines)
	}
	states := map[string]bool{}
	for _, s := range spec.States {
		if states[s] {
			return errf(Position{1, 1}, "duplicate state %q", s)
		}
		states[s] = true
	}
	mgrs := map[string]ManagerKind{}
	resets := 0
	for _, m := range spec.Managers {
		if _, dup := mgrs[m.Name]; dup {
			return errf(m.Pos, "duplicate manager %q", m.Name)
		}
		mgrs[m.Name] = m.Kind
		if m.Kind == KindReset {
			resets++
		}
		switch m.Kind {
		case KindReset, KindBypass:
		default:
			if m.Arg <= 0 {
				return errf(m.Pos, "manager %q needs a positive size", m.Name)
			}
			if m.Arg > MaxManagerSize {
				return errf(m.Pos, "manager %q: size %d exceeds the limit of %d",
					m.Name, m.Arg, MaxManagerSize)
			}
		}
	}
	edgeNames := map[string]bool{}
	for _, e := range spec.Edges {
		if edgeNames[e.Name] {
			return errf(e.Pos, "duplicate edge %q", e.Name)
		}
		edgeNames[e.Name] = true
		if !states[e.From] {
			return errf(e.Pos, "edge %s: unknown source state %q", e.Name, e.From)
		}
		if !states[e.To] {
			return errf(e.Pos, "edge %s: unknown destination state %q", e.Name, e.To)
		}
		if e.Reset && resets == 0 {
			return errf(e.Pos, "edge %s: reset edge but no reset manager declared", e.Name)
		}
		if e.Reset && e.To != spec.Initial {
			return errf(e.Pos, "edge %s: reset edges must return to the initial state", e.Name)
		}
		for _, pr := range e.Prims {
			if pr.All {
				continue
			}
			kind, ok := mgrs[pr.Manager]
			if !ok {
				return errf(pr.Pos, "edge %s: unknown manager %q", e.Name, pr.Manager)
			}
			if pr.Update && kind != KindRegFile {
				return errf(pr.Pos, "edge %s: '!' update tokens require a regfile manager", e.Name)
			}
		}
	}
	return nil
}
