package adl

import (
	"strings"
	"testing"

	"repro/internal/osm"
)

const pipelineSrc = `
// The paper's Figure 5/6 pipeline as a description.
model pipeline {
  managers {
    unit    IF(1); unit ID(1); unit EX(1); unit BF(1); unit WB(1);
    regfile RF(16);
    reset   RESET;
  }
  states { I*, F, D, E, B, W }
  edges {
    e0: I -> F [ alloc IF.0 ];
    e1: F -> D [ release IF.0, alloc ID.0 ];
    e2: D -> E [ release ID.0, inquire RF.$src, alloc EX.0, alloc RF.!$dst ];
    e3: E -> B [ release EX.0, alloc BF.0 ];
    e4: B -> W [ release BF.0, alloc WB.0 ];
    e5: W -> I [ release WB.0, release RF.!$dst ];
    r0: F -> I reset;
    r1: D -> I reset;
  }
  machines 6;
}
`

func TestParsePipeline(t *testing.T) {
	spec, err := Parse(pipelineSrc)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "pipeline" || spec.Initial != "I" || spec.Machines != 6 {
		t.Fatalf("spec header wrong: %+v", spec)
	}
	if len(spec.Managers) != 7 || len(spec.States) != 6 || len(spec.Edges) != 8 {
		t.Fatalf("spec sizes wrong: %d managers, %d states, %d edges",
			len(spec.Managers), len(spec.States), len(spec.Edges))
	}
	e2 := spec.Edges[2]
	if e2.Name != "e2" || len(e2.Prims) != 4 {
		t.Fatalf("e2 wrong: %+v", e2)
	}
	if e2.Prims[1].Form != IDBound || e2.Prims[1].Binding != "src" {
		t.Fatalf("e2 inquire wrong: %+v", e2.Prims[1])
	}
	if !e2.Prims[3].Update || e2.Prims[3].Binding != "dst" {
		t.Fatalf("e2 alloc-update wrong: %+v", e2.Prims[3])
	}
	if !spec.Edges[6].Reset {
		t.Fatal("r0 must be a reset edge")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"", `expected "model"`},
		{"model m { states { A } }", "no initial state"},
		{"model m { states { A* } machines 0; }", "not positive"},
		{"model m { states { A*, A } machines 1; }", "duplicate state"},
		{"model m { bogus { } }", "unknown section"},
		{"model m { managers { widget W(1); } states { A* } machines 1; }", "unknown manager kind"},
		{"model m { managers { unit U(0); } states { A* } machines 1; }", "positive size"},
		{"model m { managers { unit U(1); unit U(2); } states { A* } machines 1; }", "duplicate manager"},
		{"model m { states { A*, B } edges { e: A -> C; } machines 1; }", "unknown destination"},
		{"model m { states { A*, B } edges { e: C -> A; } machines 1; }", "unknown source"},
		{"model m { states { A*, B } edges { e: A -> B [ alloc X.0 ]; } machines 1; }", "unknown manager"},
		{"model m { states { A*, B } edges { e: A -> B; e: B -> A; } machines 1; }", "duplicate edge"},
		{"model m { states { A*, B } edges { r: B -> A reset; } machines 1; }", "no reset manager"},
		{"model m { managers { reset R; } states { A*, B } edges { r: A -> B reset; } machines 1; }", "must return to the initial"},
		{"model m { managers { unit U(1); } states { A*, B } edges { e: A -> B [ alloc U.!0 ]; } machines 1; }", "require a regfile"},
		{"model m { states { A* } machines 1; } trailing", "after model"},
		{"model m { states { A* } machines 1; @ }", "unexpected character"},
		{"model m { states { A*, B } edges { e: A - B; } machines 1; }", "unexpected '-'"},
		{"model m { states { A*, B } edges { e: A -> B [ frobnicate U.0 ]; } machines 1; }", "unknown primitive"},
		// Allocation ceilings: Elaborate sizes memory from these
		// counts, and descriptions arrive over the wire.
		{"model m { states { A* } machines 999999999; }", "exceeds the limit"},
		{"model m { managers { unit U(999999999); } states { A* } machines 1; }", "exceeds the limit"},
		// Numbers too large for int must be positioned errors, not
		// silent wraparound.
		{"model m { states { A* } machines 99999999999999999999; }", "bad number"},
		// Found while fuzzing the grammar corners: truncated input in
		// every section must fail cleanly at EOF.
		{"model m { managers {", "found end of input"},
		{"model m { states { A*", "found end of input"},
		{"model m { states { A*, B } edges { e: A -> B [ alloc", "found end of input"},
		{"model m { states { A*, B } edges { e: A -> B [ alloc U.", "found end of input"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.src, err, c.want)
		}
	}
}

// opCtx is the test operation payload behind the bindings.
type opCtx struct {
	dst, src int
	imm      uint64
	v        uint64
}

func buildPipeline(t *testing.T, prog []opCtx) (*Model, *osm.RegFileManager, *int) {
	t.Helper()
	pc := 0
	model, err := Build(pipelineSrc, map[string]Binding{
		"src": func(m *osm.Machine) osm.TokenID { return osm.TokenID(m.Ctx.(*opCtx).src) },
		"dst": func(m *osm.Machine) osm.TokenID { return osm.TokenID(m.Ctx.(*opCtx).dst) },
	})
	if err != nil {
		t.Fatal(err)
	}
	rf := model.Manager("RF").(*osm.RegFileManager)
	if err := model.OnWhen("e0", func(m *osm.Machine) bool { return pc < len(prog) }); err != nil {
		t.Fatal(err)
	}
	if err := model.OnEdge("e0", func(m *osm.Machine) {
		ins := prog[pc]
		pc++
		m.Ctx = &ins
	}); err != nil {
		t.Fatal(err)
	}
	if err := model.OnEdge("e2", func(m *osm.Machine) {
		op := m.Ctx.(*opCtx)
		op.v = rf.Read(op.src) + op.imm
	}); err != nil {
		t.Fatal(err)
	}
	if err := model.OnEdge("e3", func(m *osm.Machine) {
		op := m.Ctx.(*opCtx)
		if err := m.SetData(rf, osm.UpdateToken(op.dst), op.v); err != nil {
			panic(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	return model, rf, &pc
}

func TestElaboratedPipelineRuns(t *testing.T) {
	prog := []opCtx{
		{dst: 1, src: 0, imm: 5},
		{dst: 2, src: 1, imm: 3}, // depends on the first
	}
	model, rf, _ := buildPipeline(t, prog)
	retired := 0
	model.Edge("e5").Action = func(m *osm.Machine) { retired++ }
	steps := 0
	for retired < len(prog) && steps < 100 {
		if err := model.Director.Step(); err != nil {
			t.Fatal(err)
		}
		steps++
	}
	if retired != len(prog) {
		t.Fatalf("only %d/%d retired in %d steps", retired, len(prog), steps)
	}
	if got := rf.Read(2); got != 8 {
		t.Fatalf("r2 = %d, want 8 (dependent value through the ADL model)", got)
	}
	// The data hazard must cost the same stall as the hand-built
	// model in the osm package's pipeline test: 9 steps total.
	if steps != 9 {
		t.Fatalf("dependent pair took %d steps, want 9", steps)
	}
}

func TestElaboratedResetEdgeWorks(t *testing.T) {
	prog := []opCtx{{dst: 1, src: 0, imm: 1}, {dst: 2, src: 0, imm: 2}}
	model, _, _ := buildPipeline(t, prog)
	reset := model.Manager("RESET").(*osm.ResetManager)
	model.Director.Step() // op0 -> F
	model.Director.Step() // op0 -> D, op1 -> F
	var squashed []*osm.Machine
	for _, m := range model.Director.Machines() {
		if !m.InInitial() {
			reset.Mark(m)
			squashed = append(squashed, m)
		}
	}
	if len(squashed) != 2 {
		t.Fatalf("expected 2 in-flight ops, got %d", len(squashed))
	}
	if err := model.Director.Step(); err != nil {
		t.Fatal(err)
	}
	for _, m := range squashed {
		if !m.InInitial() || len(m.Tokens()) != 0 {
			t.Fatalf("machine %s not squashed by the ADL reset edge", m.Name)
		}
	}
}

func TestElaboratedModelValidates(t *testing.T) {
	model, _, _ := buildPipeline(t, nil)
	if issues := model.Validate(16); len(issues) != 0 {
		t.Fatalf("ADL pipeline should validate cleanly: %v", issues)
	}
}

func TestElaborateMissingBinding(t *testing.T) {
	_, err := Build(pipelineSrc, map[string]Binding{
		"src": func(m *osm.Machine) osm.TokenID { return 0 },
		// dst missing
	})
	if err == nil || !strings.Contains(err.Error(), "$dst") {
		t.Fatalf("err = %v, want missing-binding error for $dst", err)
	}
}

func TestModelAccessors(t *testing.T) {
	model, _, _ := buildPipeline(t, nil)
	if model.Manager("IF") == nil || model.State("D") == nil || model.Edge("e2") == nil {
		t.Fatal("accessors must find declared entities")
	}
	if model.Manager("nope") != nil || model.State("nope") != nil || model.Edge("nope") != nil {
		t.Fatal("accessors must return nil for unknown names")
	}
	if err := model.OnEdge("nope", nil); err == nil {
		t.Fatal("OnEdge of unknown edge must error")
	}
	if err := model.OnWhen("nope", nil); err == nil {
		t.Fatal("OnWhen of unknown edge must error")
	}
}

func TestManagerKindsElaborate(t *testing.T) {
	src := `
model kinds {
  managers {
    unit U(2); regfile R(8); pool P(3); queue Q(4); reset X; bypass B;
  }
  states { I*, S }
  edges {
    a: I -> S [ alloc U.*, alloc P.*, alloc Q.* ];
    b: S -> I [ release U.*, release P.*, release Q.*, discard * ];
  }
  machines 2;
}
`
	model, err := Build(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := model.Manager("U").(*osm.UnitManager); !ok {
		t.Error("U should be a UnitManager")
	}
	if _, ok := model.Manager("R").(*osm.RegFileManager); !ok {
		t.Error("R should be a RegFileManager")
	}
	if _, ok := model.Manager("P").(*osm.PoolManager); !ok {
		t.Error("P should be a PoolManager")
	}
	if _, ok := model.Manager("Q").(*osm.QueueManager); !ok {
		t.Error("Q should be a QueueManager")
	}
	if _, ok := model.Manager("X").(*osm.ResetManager); !ok {
		t.Error("X should be a ResetManager")
	}
	if _, ok := model.Manager("B").(*osm.BypassManager); !ok {
		t.Error("B should be a BypassManager")
	}
	// The ring must run: two machines cycling through allocate all /
	// release all.
	for k := 0; k < 10; k++ {
		if err := model.Director.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReleaseFAnyUnit(t *testing.T) {
	// `release U.*` must resolve against the held token.
	src := `
model anyrel {
  managers { unit U(3); }
  states { I*, S }
  edges {
    a: I -> S [ alloc U.* ];
    b: S -> I [ release U.* ];
  }
  machines 3;
}
`
	model, err := Build(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	u := model.Manager("U").(*osm.UnitManager)
	model.Director.Step()
	if u.Free() != 0 {
		t.Fatalf("all three units should be taken, free=%d", u.Free())
	}
	model.Director.Step()
	if u.Free() != 3 { // each machine transitions at most once per step
		t.Fatalf("all units should be released, free=%d", u.Free())
	}
	model.Director.Step()
	if u.Free() != 0 {
		t.Fatalf("units should be re-acquired next step, free=%d", u.Free())
	}
}

func TestFormatRoundTrip(t *testing.T) {
	spec, err := Parse(pipelineSrc)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(spec)
	spec2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse of formatted text failed: %v\n%s", err, text)
	}
	// Structural equivalence.
	if spec2.Name != spec.Name || spec2.Initial != spec.Initial || spec2.Machines != spec.Machines {
		t.Fatalf("header mismatch: %+v vs %+v", spec2, spec)
	}
	if len(spec2.Managers) != len(spec.Managers) || len(spec2.States) != len(spec.States) ||
		len(spec2.Edges) != len(spec.Edges) {
		t.Fatalf("section sizes changed:\n%s", text)
	}
	for i := range spec.Edges {
		a, b := spec.Edges[i], spec2.Edges[i]
		if a.Name != b.Name || a.From != b.From || a.To != b.To || a.Reset != b.Reset ||
			len(a.Prims) != len(b.Prims) {
			t.Fatalf("edge %d changed: %+v vs %+v", i, a, b)
		}
		for j := range a.Prims {
			pa, pb := a.Prims[j], b.Prims[j]
			if pa.Op != pb.Op || pa.Manager != pb.Manager || pa.Form != pb.Form ||
				pa.Fixed != pb.Fixed || pa.Binding != pb.Binding ||
				pa.Update != pb.Update || pa.All != pb.All {
				t.Fatalf("edge %s prim %d changed: %+v vs %+v", a.Name, j, pa, pb)
			}
		}
	}
	// Formatting is a fixed point after the first round.
	if Format(spec2) != text {
		t.Fatal("Format is not a fixed point")
	}
}

func TestFormatAllManagerKinds(t *testing.T) {
	src := `
model kinds {
  managers { unit U(2); regfile R(8); pool P(3); queue Q(4); reset X; bypass B; }
  states { I*, S }
  edges {
    a: I -> S [ alloc U.*, inquire R.5, alloc R.!$d, discard * ];
  }
  machines 1;
}
`
	spec, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(spec)
	if _, err := Parse(text); err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	for _, want := range []string{"unit U(2)", "reset X;", "bypass B;", "alloc R.!$d", "discard *", "inquire R.5"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted text missing %q:\n%s", want, text)
		}
	}
}

// The ADL can express the paper's Figure 2 machine: two prioritized
// dispatch paths out of a ready state — straight into the function
// unit, or into its reservation station when the unit is busy.
func TestFig2MultiPathInADL(t *testing.T) {
	src := `
model fig2 {
  managers {
    unit FU(1);
    unit RS(1);
  }
  states { I*, R, W, E }
  edges {
    fetch: I -> R;
    fast:  R -> E [ alloc FU.0 ];            // preferred path
    slow:  R -> W [ alloc RS.0 ];            // wait in the station
    issue: W -> E [ release RS.0, alloc FU.0 ];
    done:  E -> I [ release FU.0 ];
  }
  machines 3;
}
`
	model, err := Build(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := model.Director
	ms := d.Machines()
	step := func() {
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
	step() // all three fetch into R
	step() // op0 takes the fast path; op1 falls to the RS; op2 stuck in R
	if ms[0].State().Name != "E" {
		t.Errorf("op0 in %s, want E (fast path)", ms[0].State().Name)
	}
	if ms[1].State().Name != "W" {
		t.Errorf("op1 in %s, want W (reservation station)", ms[1].State().Name)
	}
	if ms[2].State().Name != "R" {
		t.Errorf("op2 in %s, want R (both paths blocked)", ms[2].State().Name)
	}
	step() // op0 done; op1 issues from the RS in the same step
	if ms[1].State().Name != "E" {
		t.Errorf("op1 in %s, want E (issued from RS on FU handoff)", ms[1].State().Name)
	}
	// op2 takes whichever path freed: the RS emptied this step.
	if ms[2].State().Name != "W" {
		t.Errorf("op2 in %s, want W", ms[2].State().Name)
	}
	// The whole graph still validates statically.
	if issues := model.Validate(10); len(issues) != 0 {
		t.Fatalf("fig2 model should validate: %v", issues)
	}
}
