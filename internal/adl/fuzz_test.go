package adl

import (
	"errors"
	"testing"

	"repro/internal/osm"
)

// FuzzParse drives arbitrary source through the whole untrusted
// description path: lex/parse/validate, then — when a spec survives —
// elaboration with permissive bindings and the static token-discipline
// checker. Nothing on the path may panic; every rejection must be a
// positioned *Error.
func FuzzParse(f *testing.F) {
	f.Add(pipelineSrc)
	f.Add("model m { states { a* } machines 1; }")
	f.Add(`model m {
  managers { unit u(1); pool p(2); queue q(4); regfile rf(8); bypass by; reset R; }
  states { a*, b, c }
  edges {
    e0: a -> b [ alloc u.*, inquire rf.$src, alloc rf.!$dst ];
    e1: b -> c [ release u.*, alloc q.0, discard * ];
    e2: c -> a [ release rf.!$dst ];
    r0: b -> a reset;
  }
  machines 4;
}`)
	f.Add("model broken { states {")
	f.Add("model m { machines 99999999999999999999; }")
	f.Add("model m { managers { unit u(0); } states { a* } machines 1; }")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 64<<10 {
			return // bound fuzz cost, not a parser limit
		}
		spec, err := Parse(src)
		if err != nil {
			requirePositioned(t, err, src)
			return
		}
		// A parsed spec must round-trip through the formatter.
		if _, err := Parse(Format(spec)); err != nil {
			t.Fatalf("formatted spec does not re-parse: %v\nsource: %q\nformatted: %q",
				err, src, Format(spec))
		}
		bindings := map[string]Binding{}
		for _, e := range spec.Edges {
			for _, p := range e.Prims {
				if p.Form == IDBound {
					bindings[p.Binding] = func(*osm.Machine) osm.TokenID { return 0 }
				}
			}
		}
		model, err := Elaborate(spec, bindings)
		if err != nil {
			requirePositioned(t, err, src)
			return
		}
		model.Validate(64)
	})
}

func requirePositioned(t *testing.T, err error, src string) {
	t.Helper()
	var perr *Error
	if !errors.As(err, &perr) {
		t.Fatalf("error is not a positioned *adl.Error: %v (%T)\nsource: %q", err, err, src)
	}
	if perr.Pos.Line < 1 || perr.Pos.Col < 1 {
		t.Fatalf("error position %v not 1-based: %v\nsource: %q", perr.Pos, perr, src)
	}
}
