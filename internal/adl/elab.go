package adl

import (
	"fmt"

	"repro/internal/osm"
)

// Binding resolves a `$name` identifier against the requesting
// machine, typically by reading its decoded-operation context.
type Binding func(m *osm.Machine) osm.TokenID

// Model is an elaborated, runnable OSM model.
type Model struct {
	// Spec is the description the model was built from.
	Spec *Spec
	// Director owns the machines and managers.
	Director *osm.Director

	states   map[string]*osm.State
	managers map[string]osm.TokenManager
	edges    map[string]*osm.Edge
}

// Elaborate synthesizes the runnable model: managers from the
// reusable library, states, prioritized edges with their token
// conditions, reset edges, and the machine population. Every `$name`
// identifier in the description must have a binding.
func Elaborate(spec *Spec, bindings map[string]Binding) (*Model, error) {
	m := &Model{
		Spec:     spec,
		Director: osm.NewDirector(),
		states:   make(map[string]*osm.State),
		managers: make(map[string]osm.TokenManager),
		edges:    make(map[string]*osm.Edge),
	}
	var resetMgr *osm.ResetManager
	for _, d := range spec.Managers {
		var mgr osm.TokenManager
		switch d.Kind {
		case KindUnit:
			mgr = osm.NewUnitManager(d.Name, d.Arg)
		case KindRegFile:
			mgr = osm.NewRegFileManager(d.Name, d.Arg)
		case KindPool:
			mgr = osm.NewPoolManager(d.Name, d.Arg)
		case KindQueue:
			mgr = osm.NewQueueManager(d.Name, d.Arg)
		case KindReset:
			r := osm.NewResetManager(d.Name)
			resetMgr = r
			mgr = r
		case KindBypass:
			mgr = osm.NewBypassManager(d.Name)
		default:
			return nil, errf(d.Pos, "unsupported manager kind %v", d.Kind)
		}
		m.managers[d.Name] = mgr
		m.Director.AddManager(mgr)
	}

	for _, s := range spec.States {
		m.states[s] = osm.NewState(s)
	}
	initial := m.states[spec.Initial]

	for _, e := range spec.Edges {
		if e.Reset {
			if len(e.Prims) > 0 {
				return nil, errf(e.Pos, "edge %s: reset edges take no explicit primitives", e.Name)
			}
			re := osm.ResetEdge(m.states[e.From], initial, resetMgr)
			re.Name = e.Name
			m.edges[e.Name] = re
			continue
		}
		prims := make([]osm.Primitive, 0, len(e.Prims))
		for _, pd := range e.Prims {
			prim, err := m.buildPrim(pd, bindings)
			if err != nil {
				return nil, err
			}
			prims = append(prims, prim)
		}
		edge := m.states[e.From].Connect(e.Name, m.states[e.To], prims...)
		m.edges[e.Name] = edge
	}

	for k := 0; k < spec.Machines; k++ {
		m.Director.AddMachine(osm.NewMachine(fmt.Sprintf("op%d", k), initial))
	}
	return m, nil
}

func (m *Model) buildPrim(pd PrimDecl, bindings map[string]Binding) (osm.Primitive, error) {
	if pd.All {
		return osm.Discard(nil, osm.AllTokens), nil
	}
	mgr := m.managers[pd.Manager]
	idOf := func(raw osm.TokenID) osm.TokenID {
		if pd.Update {
			return osm.UpdateToken(int(raw))
		}
		return raw
	}
	var fixed osm.TokenID
	var dyn osm.IDFunc
	switch pd.Form {
	case IDFixed:
		fixed = idOf(osm.TokenID(pd.Fixed))
	case IDAny:
		fixed = osm.AnyUnit
	case IDBound:
		b, ok := bindings[pd.Binding]
		if !ok {
			return osm.Primitive{}, errf(pd.Pos, "no binding registered for $%s", pd.Binding)
		}
		dyn = func(mach *osm.Machine) osm.TokenID { return idOf(b(mach)) }
	}
	switch pd.Op {
	case PrimAlloc:
		if dyn != nil {
			return osm.AllocF(mgr, dyn), nil
		}
		return osm.Alloc(mgr, fixed), nil
	case PrimInquire:
		if dyn != nil {
			return osm.InquireF(mgr, dyn), nil
		}
		return osm.Inquire(mgr, fixed), nil
	case PrimRelease:
		if dyn != nil {
			return osm.ReleaseF(mgr, dyn), nil
		}
		return osm.Release(mgr, fixed), nil
	case PrimDiscard:
		if dyn != nil {
			return osm.Primitive{Op: osm.OpDiscard, Mgr: mgr, ID: dyn}, nil
		}
		return osm.Discard(mgr, fixed), nil
	}
	return osm.Primitive{}, errf(pd.Pos, "unsupported primitive")
}

// Manager returns a declared manager by name (nil if absent); the
// host uses it to reach concrete types (e.g. *osm.UnitManager for
// SetBusy).
func (m *Model) Manager(name string) osm.TokenManager { return m.managers[name] }

// State returns a state by name (nil if absent).
func (m *Model) State(name string) *osm.State { return m.states[name] }

// Edge returns an edge by name (nil if absent).
func (m *Model) Edge(name string) *osm.Edge { return m.edges[name] }

// OnEdge attaches the operation-semantics action to a named edge —
// the part of a model an ADL cannot express declaratively.
func (m *Model) OnEdge(name string, action func(*osm.Machine)) error {
	e, ok := m.edges[name]
	if !ok {
		return fmt.Errorf("adl: no edge %q", name)
	}
	e.Action = action
	return nil
}

// OnWhen attaches a model-level predicate to a named edge.
func (m *Model) OnWhen(name string, when func(*osm.Machine) bool) error {
	e, ok := m.edges[name]
	if !ok {
		return fmt.Errorf("adl: no edge %q", name)
	}
	e.When = when
	return nil
}

// Validate runs the static token-discipline checker of the osm
// package over the elaborated state graph (paper Section 6).
func (m *Model) Validate(maxLen int) []osm.ValidationIssue {
	return osm.Validate(m.states[m.Spec.Initial], maxLen)
}

// Build parses and elaborates in one step.
func Build(src string, bindings map[string]Binding) (*Model, error) {
	spec, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Elaborate(spec, bindings)
}
