// Package de provides the discrete-event simulation kernel of the OSM
// framework's hardware layer, together with its cycle-driven
// specialization.
//
// The paper's Figure 4 embeds the OSM model of computation inside a
// discrete-event scheduler: between two clock edges the hardware
// modules communicate through ordinary timestamped events; at every
// edge the kernel first clocks the cycle-driven modules and then runs
// one OSM control step, which — because it introduces no events of its
// own — finishes in zero time from the discrete-event domain's point
// of view.
package de

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp in model time units. With the default
// Interval of 1 a time unit equals one clock cycle.
type Time = uint64

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // insertion order, for deterministic FIFO ties
	fn  func()
}

// eventHeap orders events by (time, insertion order).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// Clocked is implemented by cycle-driven hardware modules. The kernel
// calls Tick once per clock edge, in registration order, before the
// OSM control step of that edge. This is where caches age their miss
// timers, branch predictors update, and token manager interfaces
// exchange information with their modules.
type Clocked interface {
	Tick(cycle uint64)
}

// ClockedFunc adapts a function to the Clocked interface.
type ClockedFunc func(cycle uint64)

// Tick calls f.
func (f ClockedFunc) Tick(cycle uint64) { f(cycle) }

// Kernel is the simulation kernel: a discrete-event queue specialized
// by regular clock edges. Events strictly before an edge run first, in
// timestamp order (FIFO among equal timestamps); at the edge the
// clocked modules tick and then OnEdge — conventionally the OSM
// director's control step — runs.
type Kernel struct {
	// Interval is the clock period in time units. Zero means 1.
	// Depending on the model it corresponds to a clock cycle or a
	// phase.
	Interval Time
	// OnEdge is invoked at every clock edge after the clocked
	// modules tick; an error aborts the run. It is conventionally
	// bound to (*osm.Director).Step.
	OnEdge func(cycle uint64) error

	modules  []Clocked
	events   eventHeap
	now      Time
	nextEdge Time
	cycle    uint64
	seq      uint64
}

// NewKernel returns a kernel with a unit clock period and no modules.
func NewKernel() *Kernel { return &Kernel{Interval: 1} }

// AddClocked registers cycle-driven modules; ticks are delivered in
// registration order.
func (k *Kernel) AddClocked(ms ...Clocked) { k.modules = append(k.modules, ms...) }

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Cycle returns the number of completed clock edges.
func (k *Kernel) Cycle() uint64 { return k.cycle }

// Pending returns the number of scheduled, not yet delivered events.
func (k *Kernel) Pending() int { return len(k.events) }

// Schedule runs fn at the current time plus delay. Events scheduled
// for the same instant are delivered in scheduling order. An event
// scheduled with zero delay from inside an event handler runs at the
// same timestamp, after the handlers already queued there.
func (k *Kernel) Schedule(delay Time, fn func()) {
	k.seq++
	k.events.pushEvent(event{at: k.now + delay, seq: k.seq, fn: fn})
}

// At runs fn at the absolute time t, which must not be in the past.
func (k *Kernel) At(t Time, fn func()) error {
	if t < k.now {
		return fmt.Errorf("de: At(%d) is in the past (now %d)", t, k.now)
	}
	k.seq++
	k.events.pushEvent(event{at: t, seq: k.seq, fn: fn})
	return nil
}

func (k *Kernel) interval() Time {
	if k.Interval == 0 {
		return 1
	}
	return k.Interval
}

// StepCycle advances simulation to (and through) the next clock edge:
// it delivers every event with a timestamp strictly before the edge,
// then ticks the clocked modules and runs OnEdge at the edge itself.
// This is one iteration of the paper's Figure 4 loop.
func (k *Kernel) StepCycle() error {
	edge := k.nextEdge
	for len(k.events) > 0 && k.events.peek().at < edge {
		e := k.events.popEvent()
		k.now = e.at
		e.fn()
	}
	k.now = edge
	for _, m := range k.modules {
		m.Tick(k.cycle)
	}
	if k.OnEdge != nil {
		if err := k.OnEdge(k.cycle); err != nil {
			return fmt.Errorf("de: cycle %d: %w", k.cycle, err)
		}
	}
	// Events scheduled exactly at the edge run after the control
	// step, still at the same timestamp (the control step finishes in
	// zero time as seen from the DE domain).
	for len(k.events) > 0 && k.events.peek().at == edge {
		e := k.events.popEvent()
		e.fn()
	}
	k.cycle++
	k.nextEdge = edge + k.interval()
	return nil
}

// RunCycles executes n clock cycles and returns the number completed.
func (k *Kernel) RunCycles(n uint64) (uint64, error) {
	for i := uint64(0); i < n; i++ {
		if err := k.StepCycle(); err != nil {
			return i, err
		}
	}
	return n, nil
}

// RunUntil executes cycles until done reports true (checked after
// every cycle) or limit cycles have run, and returns the number of
// cycles executed and whether done was reached.
func (k *Kernel) RunUntil(done func() bool, limit uint64) (uint64, bool, error) {
	for i := uint64(0); i < limit; i++ {
		if err := k.StepCycle(); err != nil {
			return i, false, err
		}
		if done() {
			return i + 1, true, nil
		}
	}
	return limit, done(), nil
}

// Reset discards pending events and rewinds time to zero. Module and
// OnEdge registrations are kept.
func (k *Kernel) Reset() {
	k.events = k.events[:0]
	k.now, k.nextEdge, k.cycle, k.seq = 0, 0, 0, 0
}
