package de

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestKernelDeliversEventsInTimeOrder(t *testing.T) {
	k := NewKernel()
	k.Interval = 10
	var got []int
	k.Schedule(7, func() { got = append(got, 7) })
	k.Schedule(3, func() { got = append(got, 3) })
	k.Schedule(5, func() { got = append(got, 5) })
	if err := k.StepCycle(); err != nil {
		t.Fatal(err)
	}
	// First cycle's edge is at t=0; nothing before it. Second cycle
	// delivers everything before t=10.
	if err := k.StepCycle(); err != nil {
		t.Fatal(err)
	}
	want := []int{3, 5, 7}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("delivery order = %v, want %v", got, want)
	}
}

func TestKernelFIFOAmongEqualTimestamps(t *testing.T) {
	k := NewKernel()
	k.Interval = 10
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		k.Schedule(4, func() { got = append(got, i) })
	}
	k.StepCycle()
	k.StepCycle()
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestKernelEdgeRunsModulesThenOnEdge(t *testing.T) {
	k := NewKernel()
	var order []string
	k.AddClocked(ClockedFunc(func(c uint64) { order = append(order, "modA") }))
	k.AddClocked(ClockedFunc(func(c uint64) { order = append(order, "modB") }))
	k.OnEdge = func(c uint64) error {
		order = append(order, "osm")
		return nil
	}
	k.StepCycle()
	if len(order) != 3 || order[0] != "modA" || order[1] != "modB" || order[2] != "osm" {
		t.Fatalf("edge order = %v, want modules (in registration order) then OSM step", order)
	}
}

func TestKernelEventAtEdgeRunsAfterControlStep(t *testing.T) {
	k := NewKernel()
	k.Interval = 5
	var order []string
	k.Schedule(5, func() { order = append(order, "event@5") })
	k.OnEdge = func(c uint64) error {
		order = append(order, "osm")
		return nil
	}
	k.StepCycle() // edge at 0
	k.StepCycle() // edge at 5
	if len(order) != 3 || order[0] != "osm" || order[1] != "osm" || order[2] != "event@5" {
		t.Fatalf("order = %v, want the edge's control step before the same-time event", order)
	}
	if k.Now() != 5 {
		t.Fatalf("Now = %d, want 5", k.Now())
	}
}

func TestKernelZeroDelayFromHandler(t *testing.T) {
	k := NewKernel()
	k.Interval = 10
	var got []string
	k.Schedule(2, func() {
		got = append(got, "first")
		k.Schedule(0, func() { got = append(got, "chained") })
	})
	k.Schedule(2, func() { got = append(got, "second") })
	k.StepCycle()
	k.StepCycle()
	if len(got) != 3 || got[0] != "first" || got[1] != "second" || got[2] != "chained" {
		t.Fatalf("order = %v; zero-delay events run after already-queued same-time events", got)
	}
}

func TestKernelAtRejectsPast(t *testing.T) {
	k := NewKernel()
	k.Interval = 1
	k.StepCycle()
	k.StepCycle() // now = 1
	if err := k.At(0, func() {}); err == nil {
		t.Fatal("At in the past must error")
	}
	if err := k.At(5, func() {}); err != nil {
		t.Fatalf("At in the future: %v", err)
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", k.Pending())
	}
}

func TestKernelOnEdgeErrorAborts(t *testing.T) {
	k := NewKernel()
	boom := errors.New("boom")
	k.OnEdge = func(c uint64) error {
		if c == 2 {
			return boom
		}
		return nil
	}
	n, err := k.RunCycles(10)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n != 2 {
		t.Fatalf("completed cycles = %d, want 2", n)
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	count := 0
	k.OnEdge = func(c uint64) error { count++; return nil }
	n, done, err := k.RunUntil(func() bool { return count >= 4 }, 100)
	if err != nil || !done || n != 4 {
		t.Fatalf("RunUntil = %d,%v,%v; want 4,true,nil", n, done, err)
	}
	n, done, err = k.RunUntil(func() bool { return false }, 7)
	if err != nil || done || n != 7 {
		t.Fatalf("RunUntil limit = %d,%v,%v; want 7,false,nil", n, done, err)
	}
}

func TestKernelCycleAndIntervalDefault(t *testing.T) {
	k := NewKernel()
	k.Interval = 0 // must behave as 1
	k.RunCycles(3)
	if k.Cycle() != 3 {
		t.Fatalf("Cycle = %d, want 3", k.Cycle())
	}
	if k.Now() != 2 {
		t.Fatalf("Now = %d, want 2 (edges at 0,1,2)", k.Now())
	}
}

func TestKernelReset(t *testing.T) {
	k := NewKernel()
	k.Schedule(50, func() {})
	k.RunCycles(5)
	k.Reset()
	if k.Now() != 0 || k.Cycle() != 0 || k.Pending() != 0 {
		t.Fatal("Reset must rewind time and drop events")
	}
}

func TestKernelTickReceivesCycleNumber(t *testing.T) {
	k := NewKernel()
	var cycles []uint64
	k.AddClocked(ClockedFunc(func(c uint64) { cycles = append(cycles, c) }))
	k.RunCycles(3)
	if len(cycles) != 3 || cycles[0] != 0 || cycles[1] != 1 || cycles[2] != 2 {
		t.Fatalf("cycles = %v, want [0 1 2]", cycles)
	}
}

func TestQuickKernelDeliversAllEventsInOrder(t *testing.T) {
	// Whatever the schedule, every event fires exactly once, in
	// non-decreasing time order, never before its timestamp.
	f := func(delays []uint16) bool {
		k := NewKernel()
		k.Interval = 16
		type rec struct{ at, seen Time }
		var log []rec
		for _, d := range delays {
			at := Time(d % 256)
			k.Schedule(at, func() { log = append(log, rec{at: at, seen: k.Now()}) })
		}
		if _, err := k.RunCycles(512/16 + 2); err != nil {
			return false
		}
		if len(log) != len(delays) {
			return false
		}
		last := Time(0)
		for _, r := range log {
			if r.seen != r.at || r.seen < last {
				return false
			}
			last = r.seen
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestKernelDrivesOSMStalls is the Figure 4 integration scenario: a
// hardware-layer event (a device completing between clock edges)
// lifts a stall the operation layer is blocked on. The "device" is
// modeled with a gate the DE event opens; the OSM control step at
// each edge observes it.
func TestKernelDrivesOSMStalls(t *testing.T) {
	deviceReady := false
	stalled := 0
	released := -1

	k := NewKernel()
	k.OnEdge = func(cycle uint64) error {
		// Stand-in for a director control step: an "operation" that
		// can only proceed once the device has finished.
		if !deviceReady {
			stalled++
			return nil
		}
		if released < 0 {
			released = int(cycle)
		}
		return nil
	}
	// The device finishes at t=6, between the edges at 6 and 7 (the
	// event at an edge instant runs after that edge's control step).
	k.Schedule(6, func() { deviceReady = true })
	if _, err := k.RunCycles(10); err != nil {
		t.Fatal(err)
	}
	if stalled != 7 {
		t.Fatalf("stalled %d control steps, want 7 (edges 0..6)", stalled)
	}
	if released != 7 {
		t.Fatalf("released at edge %d, want 7", released)
	}
}
