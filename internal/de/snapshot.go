package de

import (
	"fmt"

	"repro/internal/snap"
)

const kernelSnapVersion = 1

// Snapshot encodes the kernel's clock position. Checkpoints are taken
// between cycles, where the case-study models keep no events in
// flight; an event queue holding closures cannot be serialized, so a
// non-empty queue is an error rather than silent loss.
func (k *Kernel) Snapshot(w *snap.Writer) error {
	if n := k.Pending(); n > 0 {
		return fmt.Errorf("de: snapshot with %d pending events (snapshot only between cycles)", n)
	}
	w.Version(kernelSnapVersion)
	w.U64(k.now)
	w.U64(k.nextEdge)
	w.U64(k.cycle)
	w.U64(k.seq)
	return nil
}

// Restore decodes a kernel snapshot. Module and OnEdge registrations
// are untouched; pending events are discarded (there are none in a
// valid snapshot's source).
func (k *Kernel) Restore(r *snap.Reader) error {
	r.Version("kernel", kernelSnapVersion)
	now, nextEdge := r.U64(), r.U64()
	cycle, seq := r.U64(), r.U64()
	if err := r.Close("kernel"); err != nil {
		return err
	}
	k.events = k.events[:0]
	k.now, k.nextEdge, k.cycle, k.seq = now, nextEdge, cycle, seq
	return nil
}
