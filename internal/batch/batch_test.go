package batch

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/workload"
)

// smallJobs is a mixed ARM+PPC set sized for tests: two workloads on
// both models at a reduced iteration count.
func smallJobs() []Job {
	return []Job{
		{Arch: "arm", Workload: "gsm/dec", N: 40},
		{Arch: "ppc", Workload: "gsm/dec", N: 40},
		{Arch: "arm", Workload: "g721/enc", N: 30},
		{Arch: "ppc", Workload: "g721/enc", N: 30},
	}
}

func checkOK(t *testing.T, res Result) {
	t.Helper()
	if res.Status != StatusOK {
		t.Fatalf("job %s: status %q (%s)", res.Job.Name, res.Status, res.Error)
	}
	if res.RefOK == nil || !*res.RefOK {
		t.Fatalf("job %s: reference checksum not verified", res.Job.Name)
	}
	w := workload.ByName(res.Job.Workload)
	if len(res.Reported) != 1 || res.Reported[0] != w.Ref(res.Job.N) {
		t.Fatalf("job %s: reported %v, want %#x", res.Job.Name, res.Reported, w.Ref(res.Job.N))
	}
	if res.Cycles == 0 || res.Instrs == 0 {
		t.Fatalf("job %s: empty stats %d cycles / %d instrs", res.Job.Name, res.Cycles, res.Instrs)
	}
}

// TestRunMixedParallel runs the mixed ARM+PPC set across 4 workers and
// verifies every job completes with the workload's reference checksum.
func TestRunMixedParallel(t *testing.T) {
	r := &Runner{Workers: 4}
	m := r.Run(smallJobs())
	if len(m.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(m.Results))
	}
	if m.Failed() != 0 {
		t.Fatalf("%d jobs failed", m.Failed())
	}
	for _, res := range m.Results {
		checkOK(t, res)
	}
	// The manifest must round-trip through JSON (it is the osmbatch
	// output format).
	data, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 4 || back.Results[0].Status != StatusOK {
		t.Fatalf("manifest did not survive JSON round-trip: %+v", back)
	}
}

// TestPanicIsolation injects a fault into one job and verifies the
// worker survives: the faulted job reports StatusPanic and every other
// job still completes correctly.
func TestPanicIsolation(t *testing.T) {
	jobs := smallJobs()
	jobs[1].PanicAt = 500
	r := &Runner{Workers: 2}
	m := r.Run(jobs)
	for i, res := range m.Results {
		if i == 1 {
			if res.Status != StatusPanic {
				t.Fatalf("faulted job: status %q, want %q", res.Status, StatusPanic)
			}
			if res.Error == "" {
				t.Fatal("faulted job: no error recorded")
			}
			continue
		}
		checkOK(t, res)
	}
}

// TestDeadline verifies a job that cannot finish in time is cut off
// with StatusDeadline rather than hanging the batch.
func TestDeadline(t *testing.T) {
	jobs := []Job{{Arch: "arm", Workload: "gsm/dec", N: 5000}}
	r := &Runner{Workers: 1, Deadline: time.Millisecond}
	m := r.Run(jobs)
	if got := m.Results[0].Status; got != StatusDeadline {
		t.Fatalf("status %q, want %q", got, StatusDeadline)
	}
}

// TestResumeFromCheckpoint simulates a killed run: the first Run is
// abandoned mid-job (via an injected panic after the checkpoint), then
// a second Run with the same checkpoint directory must resume from the
// checkpoint and produce the same totals as an uninterrupted run.
func TestResumeFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	job := Job{Arch: "ppc", Workload: "gsm/dec", N: 40}

	// Uninterrupted reference.
	ref := (&Runner{Workers: 1}).Run([]Job{job}).Results[0]
	checkOK(t, ref)

	// First attempt: checkpoint every 200 cycles, die at cycle 1000.
	killed := job
	killed.PanicAt = 1000
	first := (&Runner{
		Workers:         1,
		CheckpointDir:   dir,
		CheckpointEvery: 200,
	}).Run([]Job{killed}).Results[0]
	if first.Status != StatusPanic {
		t.Fatalf("first attempt: status %q, want %q", first.Status, StatusPanic)
	}
	if first.Checkpoints == 0 {
		t.Fatal("first attempt wrote no checkpoints")
	}
	if _, err := os.Stat(filepath.Join(dir, "runs", first.Job.Name+".idx")); err != nil {
		t.Fatalf("checkpoint store index missing after kill: %v", err)
	}

	// Second attempt resumes and completes.
	second := (&Runner{
		Workers:         1,
		CheckpointDir:   dir,
		CheckpointEvery: 200,
	}).Run([]Job{job}).Results[0]
	if !second.Resumed {
		t.Fatal("second attempt did not resume from the checkpoint")
	}
	checkOK(t, second)
	if second.Cycles != ref.Cycles || second.Instrs != ref.Instrs {
		t.Fatalf("resumed run: %d cycles / %d instrs, uninterrupted: %d / %d",
			second.Cycles, second.Instrs, ref.Cycles, ref.Instrs)
	}
	// A successful job removes its checkpoints so the next batch starts
	// fresh — the store run is dropped and no legacy file lingers.
	if _, err := os.Stat(filepath.Join(dir, "runs", second.Job.Name+".idx")); !os.IsNotExist(err) {
		t.Fatalf("checkpoint run not cleaned up after success: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, second.Job.Name+".ckpt")); !os.IsNotExist(err) {
		t.Fatalf("legacy checkpoint file written: %v", err)
	}
}

// TestCheckpointIdentityMismatch verifies a checkpoint written for a
// different job configuration is ignored instead of restored.
func TestCheckpointIdentityMismatch(t *testing.T) {
	dir := t.TempDir()
	job := Job{Name: "fixed-name", Arch: "arm", Workload: "gsm/dec", N: 40, PanicAt: 800}
	r := &Runner{Workers: 1, CheckpointDir: dir, CheckpointEvery: 200}
	if got := r.Run([]Job{job}).Results[0]; got.Status != StatusPanic {
		t.Fatalf("setup run: status %q", got.Status)
	}

	// Same name, different iteration count: must not resume.
	other := Job{Name: "fixed-name", Arch: "arm", Workload: "gsm/dec", N: 50}
	res := (&Runner{Workers: 1, CheckpointDir: dir, CheckpointEvery: 200}).Run([]Job{other}).Results[0]
	if res.Resumed {
		t.Fatal("resumed from a checkpoint with a different job identity")
	}
	checkOK(t, res)
}

// TestCheckpointIdentityIgnoresCheck: the invariant checker is a pure
// observer, so toggling Job.Check must not invalidate an existing
// checkpoint (same exclusion PanicAt gets).
func TestCheckpointIdentityIgnoresCheck(t *testing.T) {
	dir := t.TempDir()
	job := Job{Name: "fixed-name", Arch: "arm", Workload: "gsm/dec", N: 40, PanicAt: 800}
	r := &Runner{Workers: 1, CheckpointDir: dir, CheckpointEvery: 200}
	if got := r.Run([]Job{job}).Results[0]; got.Status != StatusPanic {
		t.Fatalf("setup run: status %q", got.Status)
	}

	resumed := Job{Name: "fixed-name", Arch: "arm", Workload: "gsm/dec", N: 40, Check: true}
	res := (&Runner{Workers: 1, CheckpointDir: dir, CheckpointEvery: 200}).Run([]Job{resumed}).Results[0]
	if !res.Resumed {
		t.Fatal("toggling Check invalidated the checkpoint")
	}
	checkOK(t, res)
}

// TestCorruptCheckpointRestarts verifies a damaged checkpoint store —
// here, a truncated run index — does not kill the job: it restarts
// from scratch and still succeeds.
func TestCorruptCheckpointRestarts(t *testing.T) {
	dir := t.TempDir()
	job := Job{Name: "c", Arch: "arm", Workload: "gsm/dec", N: 40, PanicAt: 800}
	r := &Runner{Workers: 1, CheckpointDir: dir, CheckpointEvery: 200}
	if got := r.Run([]Job{job}).Results[0]; got.Status != StatusPanic {
		t.Fatalf("setup run: status %q", got.Status)
	}
	path := filepath.Join(dir, "runs", "c.idx")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	clean := Job{Name: "c", Arch: "arm", Workload: "gsm/dec", N: 40}
	res := (&Runner{Workers: 1, CheckpointDir: dir, CheckpointEvery: 200}).Run([]Job{clean}).Results[0]
	if res.Resumed {
		t.Fatal("resumed from a corrupt checkpoint")
	}
	checkOK(t, res)
}

// Checkpoints written by older builds as whole `.ckpt` files must
// still resume when the store holds nothing for the job.
func TestLegacyCkptFileStillResumes(t *testing.T) {
	dir := t.TempDir()
	job := Job{Name: "lg", Arch: "arm", Workload: "gsm/dec", N: 40, PanicAt: 800}
	r := &Runner{Workers: 1, CheckpointDir: dir, CheckpointEvery: 200}
	if got := r.Run([]Job{job}).Results[0]; got.Status != StatusPanic {
		t.Fatalf("setup run: status %q", got.Status)
	}
	// Convert the stored checkpoint into the legacy layout by hand:
	// the store record's bytes ARE the legacy file format.
	clean := Job{Name: "lg", Arch: "arm", Workload: "gsm/dec", N: 40}
	clean.fill()
	st, err := r.checkpointStore()
	if err != nil {
		t.Fatal(err)
	}
	_, rec, err := st.Latest("lg")
	if err != nil {
		t.Fatal(err)
	}
	if !IsCheckpoint(rec) {
		t.Fatal("stored record is not a checkpoint")
	}
	if err := st.DeleteRun("lg"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "lg.ckpt"), rec, 0o644); err != nil {
		t.Fatal(err)
	}

	res := (&Runner{Workers: 1, CheckpointDir: dir, CheckpointEvery: 200}).Run([]Job{clean}).Results[0]
	if !res.Resumed {
		t.Fatal("legacy .ckpt file did not resume")
	}
	checkOK(t, res)
}

// TestMixJobs checks the standard job set covers every workload on
// both models with unique names.
func TestMixJobs(t *testing.T) {
	jobs := MixJobs(0)
	want := 2 * len(workload.Mix())
	if len(jobs) != want {
		t.Fatalf("got %d jobs, want %d", len(jobs), want)
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		j.fill()
		if seen[j.Name] {
			t.Fatalf("duplicate job name %q", j.Name)
		}
		seen[j.Name] = true
		if j.N == 0 {
			t.Fatalf("job %s: default N not filled", j.Name)
		}
	}
}

// A batch interrupted mid-run must flush a checkpoint for the job in
// progress (so a rerun resumes it) and account for every queued job
// in the manifest.
func TestInterruptFlushesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	interrupt := make(chan struct{})
	jobs := []Job{
		{Arch: "arm", Workload: "gsm/dec", N: 20000},
		{Arch: "ppc", Workload: "gsm/dec", N: 20000},
	}
	r := &Runner{Workers: 1, CheckpointDir: dir, Interrupt: interrupt}
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(interrupt)
	}()
	m := r.Run(jobs)
	if len(m.Results) != 2 {
		t.Fatalf("manifest has %d results, want 2", len(m.Results))
	}
	first := m.Results[0]
	if first.Status != StatusInterrupted {
		t.Fatalf("in-progress job: status %q (%s), want %q", first.Status, first.Error, StatusInterrupted)
	}
	if first.Checkpoints == 0 {
		t.Fatal("interrupt did not flush a checkpoint for the in-progress job")
	}
	if _, err := os.Stat(filepath.Join(dir, "runs", first.Job.Name+".idx")); err != nil {
		t.Fatalf("flushed checkpoint store index missing: %v", err)
	}
	// The flushed checkpoint must pass the identity check and carry a
	// mid-run cycle, i.e. a rerun with the same directory resumes.
	j := jobs[0]
	j.fill()
	blob, cycle, ok := r.loadCheckpoint(j)
	if !ok {
		t.Fatal("flushed checkpoint does not load for the same job identity")
	}
	if cycle == 0 || len(blob) == 0 {
		t.Fatalf("flushed checkpoint is empty: cycle %d, %d bytes", cycle, len(blob))
	}
	second := m.Results[1]
	if second.Status != StatusInterrupted {
		t.Fatalf("queued job: status %q, want %q", second.Status, StatusInterrupted)
	}
	if second.Error != "interrupted before start" {
		t.Fatalf("queued job error %q, want interrupted-before-start", second.Error)
	}
}

// An interrupt raised before the batch starts still yields a complete
// manifest: every job is recorded as interrupted, none crash or hang.
func TestInterruptBeforeStart(t *testing.T) {
	interrupt := make(chan struct{})
	close(interrupt)
	m := (&Runner{Workers: 2, Interrupt: interrupt}).Run(smallJobs())
	if len(m.Results) != len(smallJobs()) {
		t.Fatalf("manifest has %d results, want %d", len(m.Results), len(smallJobs()))
	}
	for _, res := range m.Results {
		if res.Status != StatusInterrupted {
			t.Fatalf("job %s: status %q, want %q", res.Job.Name, res.Status, StatusInterrupted)
		}
		if res.Job.Name == "" {
			t.Fatal("interrupted job left without a derived name")
		}
	}
	if m.Failed() != len(m.Results) {
		t.Fatalf("Failed() = %d, want %d", m.Failed(), len(m.Results))
	}
}
