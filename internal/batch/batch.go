// Package batch is the parallel batch-simulation driver: it runs a
// set of workload/model jobs across a worker pool with per-job
// deadlines, panic isolation, periodic checkpoints and resume from
// the last checkpoint, and produces a JSON results manifest. It is
// the library behind cmd/osmbatch.
package batch

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/osm"
	"repro/internal/osm/invariant"
	"repro/internal/sim/ppc750"
	"repro/internal/sim/strongarm"
	"repro/internal/snap"
	"repro/internal/store"
	"repro/internal/workload"
)

// Job describes one simulation to run.
type Job struct {
	// Name identifies the job in results and checkpoint files; it
	// must be unique within a batch. Empty means derived from the
	// other fields.
	Name string `json:"name"`
	// Arch selects the model: "arm" (StrongARM) or "ppc" (PPC750).
	Arch string `json:"arch"`
	// Workload is a workload name from internal/workload.
	Workload string `json:"workload"`
	// N is the iteration count (0 = the workload's default).
	N int `json:"n"`
	// Scan selects the reference scan scheduler instead of the
	// event-driven one. It is the legacy form of Engine = "scan" and
	// takes precedence.
	Scan bool `json:"scan,omitempty"`
	// Engine selects the execution engine: "event" (default), "scan"
	// or "compiled". Engines are trace-equivalent, so checkpoints
	// resume across engine changes (the field is not part of the job
	// identity).
	Engine string `json:"engine,omitempty"`
	// MaxCycles bounds the run (0 = 20M).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// PanicAt, when nonzero, makes the job panic at that cycle —
	// fault injection for exercising the driver's panic isolation.
	PanicAt uint64 `json:"panic_at,omitempty"`
	// Check verifies OSM invariants (token conservation, bindings,
	// scheduling, livelock) every control step; a violation fails the
	// job with a structured diagnostic.
	Check bool `json:"check,omitempty"`
}

func (j *Job) fill() {
	if j.N == 0 {
		if w := workload.ByName(j.Workload); w != nil {
			j.N = w.DefaultN
		}
	}
	if j.MaxCycles == 0 {
		j.MaxCycles = 20_000_000
	}
	if j.Name == "" {
		j.Name = fmt.Sprintf("%s-%s-n%d", j.Arch, strings.ReplaceAll(j.Workload, "/", "_"), j.N)
	}
}

// Job statuses.
const (
	StatusOK          = "ok"
	StatusError       = "error"
	StatusPanic       = "panic"
	StatusDeadline    = "deadline"
	StatusInterrupted = "interrupted"
)

// Result reports one finished (or failed) job.
type Result struct {
	Job         Job      `json:"job"`
	Status      string   `json:"status"`
	Cycles      uint64   `json:"cycles"`
	Instrs      uint64   `json:"instrs"`
	CPI         float64  `json:"cpi,omitempty"`
	Reported    []uint32 `json:"reported,omitempty"`
	RefOK       *bool    `json:"ref_ok,omitempty"`
	Error       string   `json:"error,omitempty"`
	Resumed     bool     `json:"resumed,omitempty"`
	Checkpoints int      `json:"checkpoints,omitempty"`
	WallMS      int64    `json:"wall_ms"`
}

// Manifest is the JSON results document for one batch run.
type Manifest struct {
	Workers int      `json:"workers"`
	Results []Result `json:"results"`
}

// Failed returns the number of jobs that did not finish with StatusOK.
func (m *Manifest) Failed() int {
	n := 0
	for _, r := range m.Results {
		if r.Status != StatusOK {
			n++
		}
	}
	return n
}

// Runner executes jobs across a worker pool.
type Runner struct {
	// Workers is the pool size (0 = 1).
	Workers int
	// CheckpointEvery is the cycle interval between checkpoints
	// (0 = no periodic checkpoints).
	CheckpointEvery uint64
	// CheckpointDir receives per-job checkpoint files; required when
	// CheckpointEvery is set. Jobs whose checkpoint file matches
	// resume from it instead of starting over.
	CheckpointDir string
	// Deadline bounds each job's wall-clock time (0 = none).
	Deadline time.Duration
	// Interrupt, if non-nil, aborts the batch when closed: queued
	// jobs are not started, and each in-progress job flushes a final
	// checkpoint (when CheckpointDir is set) and is recorded with
	// StatusInterrupted, so a rerun with the same CheckpointDir
	// resumes instead of losing the partial run.
	Interrupt <-chan struct{}
	// Log, if non-nil, receives per-job progress lines.
	Log io.Writer

	// store caches the CheckpointDir chunk store across jobs.
	storeOnce sync.Once
	store     *store.Store
	storeErr  error
}

// interrupted reports whether the interrupt channel has been closed.
func (r *Runner) interrupted() bool {
	if r.Interrupt == nil {
		return false
	}
	select {
	case <-r.Interrupt:
		return true
	default:
		return false
	}
}

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		fmt.Fprintf(r.Log, format+"\n", args...)
	}
}

// batchSim is the model-independent driver surface; both case-study
// simulators implement it.
type batchSim interface {
	StepCycle() error
	Cycle() uint64
	Done() bool
	Snapshot() ([]byte, error)
	Restore([]byte) error
}

// buildSim constructs the job's simulator plus a finalizer extracting
// (cycles, instrs, reported) after the run drains.
func buildSim(j Job) (batchSim, func() (uint64, uint64, []uint32, error), error) {
	w := workload.ByName(j.Workload)
	if w == nil {
		return nil, nil, fmt.Errorf("batch: unknown workload %q", j.Workload)
	}
	eng, err := osm.ParseEngine(j.Engine)
	if err != nil {
		return nil, nil, fmt.Errorf("batch: %v", err)
	}
	if j.Scan {
		eng = osm.EngineScan
	}
	switch j.Arch {
	case "arm":
		p, err := w.ARMProgram(j.N)
		if err != nil {
			return nil, nil, err
		}
		s, err := strongarm.New(p, strongarm.Config{Engine: eng})
		if err != nil {
			return nil, nil, err
		}
		if j.Check {
			invariant.Attach(s.Director())
		}
		fin := func() (uint64, uint64, []uint32, error) {
			st, err := s.Finalize()
			return st.Cycles, st.Instrs, s.ISS.Reported, err
		}
		return s, fin, nil
	case "ppc":
		p, err := w.PPCProgram(j.N)
		if err != nil {
			return nil, nil, err
		}
		s, err := ppc750.New(p, ppc750.Config{Engine: eng})
		if err != nil {
			return nil, nil, err
		}
		if j.Check {
			invariant.Attach(s.Director())
		}
		fin := func() (uint64, uint64, []uint32, error) {
			st, err := s.Finalize()
			return st.Cycles, st.Instrs, s.ISS.Reported, err
		}
		return s, fin, nil
	default:
		return nil, nil, fmt.Errorf("batch: unknown arch %q (want arm or ppc)", j.Arch)
	}
}

// Run executes the batch and returns the manifest. Results are in job
// order regardless of completion order. A panicking job is recorded
// with StatusPanic; the worker survives and continues with the next
// job.
func (r *Runner) Run(jobs []Job) Manifest {
	workers := r.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result, len(jobs))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				results[i] = r.runJob(jobs[i])
			}
		}()
	}
dispatch:
	for i := range jobs {
		if r.Interrupt == nil {
			idxCh <- i
			continue
		}
		select {
		case <-r.Interrupt:
			// Queued jobs are not started; record them so the
			// manifest accounts for every job in the batch.
			for k := i; k < len(jobs); k++ {
				j := jobs[k]
				j.fill()
				results[k] = Result{
					Job:    j,
					Status: StatusInterrupted,
					Error:  "interrupted before start",
				}
			}
			break dispatch
		case idxCh <- i:
		}
	}
	close(idxCh)
	wg.Wait()
	r.gcCheckpoints()
	return Manifest{Workers: workers, Results: results}
}

// runJob executes one job, converting panics into a StatusPanic
// result.
func (r *Runner) runJob(j Job) (res Result) {
	j.fill()
	res.Job = j
	start := time.Now()
	defer func() {
		res.WallMS = time.Since(start).Milliseconds()
		if p := recover(); p != nil {
			res.Status = StatusPanic
			res.Error = fmt.Sprintf("panic: %v", p)
			r.logf("job %s: %s", j.Name, res.Error)
		}
	}()

	s, finalize, err := buildSim(j)
	if err != nil {
		res.Status = StatusError
		res.Error = err.Error()
		return res
	}

	if blob, cycle, ok := r.loadCheckpoint(j); ok {
		if err := s.Restore(blob); err != nil {
			// A stale or corrupt checkpoint must not kill the job:
			// rebuild and start over.
			r.logf("job %s: checkpoint unusable (%v), restarting", j.Name, err)
			s, finalize, err = buildSim(j)
			if err != nil {
				res.Status = StatusError
				res.Error = err.Error()
				return res
			}
		} else {
			res.Resumed = true
			r.logf("job %s: resumed at cycle %d", j.Name, cycle)
		}
	}

	nextCkpt := uint64(0)
	if r.CheckpointEvery > 0 {
		nextCkpt = s.Cycle() + r.CheckpointEvery
	}
	const deadlineCheck = 1024
	for !s.Done() {
		if s.Cycle() >= j.MaxCycles {
			res.Status = StatusError
			res.Error = fmt.Sprintf("did not finish within %d cycles", j.MaxCycles)
			return res
		}
		if j.PanicAt > 0 && s.Cycle() == j.PanicAt {
			panic(fmt.Sprintf("injected fault at cycle %d", j.PanicAt))
		}
		if r.Deadline > 0 && s.Cycle()%deadlineCheck == 0 && time.Since(start) > r.Deadline {
			res.Status = StatusDeadline
			res.Error = fmt.Sprintf("exceeded deadline %v at cycle %d", r.Deadline, s.Cycle())
			return res
		}
		if s.Cycle()%deadlineCheck == 0 && r.interrupted() {
			// Flush the partial run so a rerun resumes here instead
			// of starting over.
			if r.CheckpointDir != "" {
				if err := r.writeCheckpoint(j, s); err != nil {
					r.logf("job %s: interrupt checkpoint failed: %v", j.Name, err)
				} else {
					res.Checkpoints++
				}
			}
			res.Status = StatusInterrupted
			res.Error = fmt.Sprintf("interrupted at cycle %d", s.Cycle())
			r.logf("job %s: %s", j.Name, res.Error)
			return res
		}
		if err := s.StepCycle(); err != nil {
			res.Status = StatusError
			res.Error = err.Error()
			return res
		}
		if nextCkpt > 0 && s.Cycle() >= nextCkpt {
			if err := r.writeCheckpoint(j, s); err != nil {
				r.logf("job %s: checkpoint failed: %v", j.Name, err)
			} else {
				res.Checkpoints++
			}
			nextCkpt = s.Cycle() + r.CheckpointEvery
		}
	}

	cycles, instrs, reported, err := finalize()
	res.Cycles, res.Instrs, res.Reported = cycles, instrs, reported
	if instrs > 0 {
		res.CPI = float64(cycles) / float64(instrs)
	}
	if err != nil {
		res.Status = StatusError
		res.Error = err.Error()
		return res
	}
	if w := workload.ByName(j.Workload); w != nil && w.Ref != nil {
		ok := len(reported) == 1 && reported[0] == w.Ref(j.N)
		res.RefOK = &ok
		if !ok {
			res.Status = StatusError
			res.Error = "reported checksum does not match the workload reference"
			return res
		}
	}
	res.Status = StatusOK
	r.removeCheckpoint(j)
	r.logf("job %s: ok (%d cycles, %d instrs)", j.Name, cycles, instrs)
	return res
}

// ---- checkpoint records ----

const (
	ckptHeader  = "ckpt"
	ckptVersion = 1
)

// checkpointGCGrace spares store files younger than this from the
// end-of-batch sweep, so two osmbatch processes sharing a checkpoint
// directory cannot reclaim each other's half-written checkpoints.
const checkpointGCGrace = time.Minute

// Checkpoint is a decoded checkpoint record: the identity of the job
// it was written for, the cycle it captures, and the simulator
// snapshot blob.
type Checkpoint struct {
	Job   Job
	Cycle uint64
	Blob  []byte
}

// IsCheckpoint reports whether data starts like an encoded batch
// checkpoint record.
func IsCheckpoint(data []byte) bool {
	rd := snap.NewReader(data)
	return rd.U32() == snap.Magic && rd.String() == ckptHeader && rd.Err() == nil
}

// EncodeCheckpoint wraps a simulator snapshot with the job identity so
// a renamed or edited job set cannot resume from a mismatched record.
func EncodeCheckpoint(j Job, cycle uint64, blob []byte) ([]byte, error) {
	w := snap.NewWriter()
	w.U32(snap.Magic)
	w.String(ckptHeader)
	w.Version(ckptVersion)
	writeJobIdentity(w, j)
	w.U64(cycle)
	w.Bytes32(blob)
	if err := w.Err(); err != nil {
		return nil, fmt.Errorf("batch: encode checkpoint: %w", err)
	}
	return w.Bytes(), nil
}

// DecodeCheckpoint parses an encoded checkpoint record. The returned
// Job carries identity fields only (see jobIdentity).
func DecodeCheckpoint(data []byte) (Checkpoint, error) {
	rd := snap.NewReader(data)
	if rd.U32() != snap.Magic || rd.String() != ckptHeader {
		return Checkpoint{}, fmt.Errorf("batch: not a checkpoint record")
	}
	rd.Version(ckptHeader, ckptVersion)
	var c Checkpoint
	readJobIdentity(rd, &c.Job)
	c.Cycle = rd.U64()
	c.Blob = rd.Bytes32()
	if err := rd.Err(); err != nil {
		return Checkpoint{}, fmt.Errorf("batch: checkpoint record: %w", err)
	}
	return c, nil
}

// checkpointStore lazily opens the chunk store rooted at
// CheckpointDir. Checkpoints live in the store under the job name
// (run = job name, cycle = checkpoint cycle), chunked and
// deduplicated against earlier checkpoints of the same job.
func (r *Runner) checkpointStore() (*store.Store, error) {
	r.storeOnce.Do(func() {
		r.store, r.storeErr = store.Open(r.CheckpointDir, store.Options{})
	})
	return r.store, r.storeErr
}

// checkpointPath returns the legacy whole-file checkpoint path;
// current builds write through the store instead.
func (r *Runner) checkpointPath(j Job) string {
	return filepath.Join(r.CheckpointDir, j.Name+".ckpt")
}

// writeCheckpoint persists the job's state into the checkpoint store.
func (r *Runner) writeCheckpoint(j Job, s batchSim) error {
	if r.CheckpointDir == "" {
		return fmt.Errorf("batch: CheckpointEvery set without CheckpointDir")
	}
	blob, err := s.Snapshot()
	if err != nil {
		return err
	}
	rec, err := EncodeCheckpoint(j, s.Cycle(), blob)
	if err != nil {
		return err
	}
	st, err := r.checkpointStore()
	if err != nil {
		return err
	}
	_, err = st.Put(j.Name, s.Cycle(), rec)
	return err
}

// loadCheckpoint returns the simulator snapshot from the job's latest
// stored checkpoint when one exists and its identity matches. Jobs
// checkpointed by older builds fall back to the legacy `.ckpt` file.
// A damaged checkpoint never kills the job — it restarts from scratch.
func (r *Runner) loadCheckpoint(j Job) (blob []byte, cycle uint64, ok bool) {
	if r.CheckpointDir == "" {
		return nil, 0, false
	}
	var data []byte
	if st, err := r.checkpointStore(); err == nil {
		switch _, d, err := st.Latest(j.Name); {
		case err == nil:
			data = d
		case !errors.Is(err, store.ErrNotFound):
			r.logf("job %s: stored checkpoint unusable (%v)", j.Name, err)
		}
	}
	if data == nil {
		d, err := os.ReadFile(r.checkpointPath(j))
		if err != nil {
			return nil, 0, false
		}
		data = d
	}
	c, err := DecodeCheckpoint(data)
	if err != nil {
		r.logf("job %s: ignoring unreadable checkpoint (%v)", j.Name, err)
		return nil, 0, false
	}
	if c.Job != jobIdentity(j) {
		r.logf("job %s: ignoring checkpoint with mismatched identity", j.Name)
		return nil, 0, false
	}
	return c.Blob, c.Cycle, true
}

// removeCheckpoint drops the job's checkpoints after success: the
// store run and any legacy whole-file checkpoint. Chunks the run
// referenced are reclaimed by the end-of-batch GC sweep.
func (r *Runner) removeCheckpoint(j Job) {
	if r.CheckpointDir == "" {
		return
	}
	if st, err := r.checkpointStore(); err == nil {
		if err := st.DeleteRun(j.Name); err != nil {
			r.logf("job %s: dropping checkpoints: %v", j.Name, err)
		}
	}
	os.Remove(r.checkpointPath(j))
}

// gcCheckpoints sweeps the checkpoint store after a batch: chunks
// that only completed jobs referenced are reclaimed (the counterpart
// of the park-directory leak fix). Recent files are spared so
// concurrent batches sharing the directory are safe.
func (r *Runner) gcCheckpoints() {
	if r.CheckpointDir == "" {
		return
	}
	st, err := r.checkpointStore()
	if err != nil {
		return
	}
	stats, err := st.GC(store.GCOptions{Grace: checkpointGCGrace})
	if err != nil {
		r.logf("checkpoint gc: %v", err)
		return
	}
	if stats.SweptChunks > 0 || stats.SweptLegacy > 0 {
		r.logf("checkpoint gc: swept %d chunks (%d bytes) and %d legacy files",
			stats.SweptChunks, stats.SweptBytes, stats.SweptLegacy)
	}
}

// jobIdentity strips the fields that do not affect simulation state
// (fault injection is driver-side, the invariant checker is a pure
// observer, and execution engines are trace-equivalent), so
// checkpoints resume across differing settings.
func jobIdentity(j Job) Job {
	j.PanicAt = 0
	j.Check = false
	j.Engine = ""
	return j
}

func writeJobIdentity(w *snap.Writer, j Job) {
	id := jobIdentity(j)
	w.String(id.Name)
	w.String(id.Arch)
	w.String(id.Workload)
	w.Int(id.N)
	w.Bool(id.Scan)
	w.U64(id.MaxCycles)
}

func readJobIdentity(r *snap.Reader, j *Job) {
	j.Name = r.String()
	j.Arch = r.String()
	j.Workload = r.String()
	j.N = r.Int()
	j.Scan = r.Bool()
	j.MaxCycles = r.U64()
}

// MixJobs returns the standard mixed ARM+PPC job set over every
// workload, n iterations each (0 = per-workload default).
func MixJobs(n int) []Job {
	var jobs []Job
	for _, w := range workload.Mix() {
		for _, arch := range []string{"arm", "ppc"} {
			jobs = append(jobs, Job{Arch: arch, Workload: w.Name, N: n})
		}
	}
	return jobs
}
