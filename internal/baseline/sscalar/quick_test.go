package sscalar

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa/arm"
	"repro/internal/sim/strongarm"
)

// randomProgram generates a valid, halting straight-line ARM program
// from a seed: a mix of ALU operations (with dependences), multiplies,
// loads and stores against a scratch region, and occasional forward
// conditional skips — the hazard vocabulary of the pipeline, without
// unbounded control flow.
func randomProgram(seed int64, length int) string {
	rng := rand.New(rand.NewSource(seed))
	src := "\tmov r8, #0x4000\n"                 // scratch base
	reg := func() int { return 1 + rng.Intn(6) } // r1..r6
	for i := 0; i < length; i++ {
		switch rng.Intn(12) {
		case 0, 1, 2:
			src += fmt.Sprintf("\tadd r%d, r%d, #%d\n", reg(), reg(), rng.Intn(256))
		case 3:
			src += fmt.Sprintf("\tsubs r%d, r%d, r%d\n", reg(), reg(), reg())
		case 4:
			src += fmt.Sprintf("\tmul r%d, r%d, r%d\n", reg(), reg(), reg())
		case 5:
			src += fmt.Sprintf("\tstr r%d, [r8, #%d]\n", reg(), 4*rng.Intn(16))
		case 6:
			src += fmt.Sprintf("\tldr r%d, [r8, #%d]\n", reg(), 4*rng.Intn(16))
		case 7:
			src += fmt.Sprintf("\teor r%d, r%d, r%d, lsl #%d\n", reg(), reg(), reg(), 1+rng.Intn(8))
		case 8:
			// A conditional instruction (reads flags).
			src += fmt.Sprintf("\taddge r%d, r%d, #1\n", reg(), reg())
		case 9:
			// A short forward skip: branch over the next instruction.
			src += fmt.Sprintf("\tcmp r%d, #%d\n", reg(), rng.Intn(64))
			src += fmt.Sprintf("\tbgt skip%d\n", i)
			src += fmt.Sprintf("\tadd r%d, r%d, #2\n", reg(), reg())
			src += fmt.Sprintf("skip%d:\n", i)
		case 10:
			src += fmt.Sprintf("\tstrh r%d, [r8, #%d]\n", reg(), 2*rng.Intn(16))
		case 11:
			src += fmt.Sprintf("\tldrsh r%d, [r8, #%d]\n", reg(), 2*rng.Intn(16))
		}
	}
	// Fold the registers into r0 so divergence in any value shows up
	// in the exit code.
	for r := 1; r <= 6; r++ {
		src += fmt.Sprintf("\tadd r0, r0, r%d\n", r)
	}
	return src + "\tswi #0\n"
}

// TestQuickCrossSimulatorEquivalence is the repository's strongest
// validation: for random programs, the OSM StrongARM model and this
// independently implemented baseline must agree on BOTH the final
// architectural state and the exact cycle count.
func TestQuickCrossSimulatorEquivalence(t *testing.T) {
	f := func(seed int64, lenSeed uint8) bool {
		length := 10 + int(lenSeed%60)
		src := randomProgram(seed, length)
		p, err := arm.Assemble(src)
		if err != nil {
			t.Logf("seed %d: assembly failed: %v", seed, err)
			return false
		}
		osmSim, err := strongarm.New(p, strongarm.Config{})
		if err != nil {
			return false
		}
		osmStats, err := osmSim.Run(1_000_000)
		if err != nil {
			t.Logf("seed %d: osm run failed: %v", seed, err)
			return false
		}
		base, err := New(p, Config{})
		if err != nil {
			return false
		}
		baseStats, err := base.Run(1_000_000)
		if err != nil {
			t.Logf("seed %d: baseline run failed: %v", seed, err)
			return false
		}
		if osmSim.ISS.CPU.ExitCode != base.ISS.CPU.ExitCode {
			t.Logf("seed %d: exit codes differ: %#x vs %#x",
				seed, osmSim.ISS.CPU.ExitCode, base.ISS.CPU.ExitCode)
			return false
		}
		if osmStats.Instrs != baseStats.Instrs {
			t.Logf("seed %d: instruction counts differ: %d vs %d",
				seed, osmStats.Instrs, baseStats.Instrs)
			return false
		}
		if osmStats.Cycles != baseStats.Cycles {
			t.Logf("seed %d: cycle counts differ: %d vs %d (program:\n%s)",
				seed, osmStats.Cycles, baseStats.Cycles, src)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
