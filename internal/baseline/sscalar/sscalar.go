// Package sscalar is the SimpleScalar-style baseline simulator of the
// evaluation: a hand-coded, cycle-driven ARM pipeline model in which
// the concurrency of the hardware is sequentialized by hand — pipeline
// latches processed in reverse stage order with ad-hoc hazard logic —
// exactly the modeling style the paper contrasts the OSM approach
// against.
//
// It implements the same StrongARM-like timing rules as the OSM model
// in package sim/strongarm (single issue, forwarding, one load-use
// stall cycle, 2-cycle taken-branch penalty, multiplier early
// termination, cache/TLB stalls), but as an independent
// implementation. The benchmark harness uses it in two roles: as the
// speed baseline ("SimpleScalar-ARM runs at 550k cycles/sec") and as
// the external timing oracle that stands in for the paper's iPAQ
// hardware in the Table 1 validation.
package sscalar

import (
	"fmt"

	"repro/internal/isa/arm"
	"repro/internal/iss"
	"repro/internal/mem"
)

// Config parameterizes the baseline.
type Config struct {
	// Hier sizes the memory subsystem; the zero value selects the
	// SA-1100-like defaults.
	Hier mem.HierarchyConfig
	// RAMKB sizes the memory image; the zero value selects 1024.
	RAMKB int
	// FixedMul charges the worst-case multiplier latency always.
	FixedMul bool
}

// Stats reports a finished simulation.
type Stats struct {
	Cycles    uint64
	Instrs    uint64
	ICache    mem.CacheStats
	DCache    mem.CacheStats
	Redirects uint64
}

// CPI returns cycles per instruction.
func (s Stats) CPI() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instrs)
}

// Pipeline stage indices.
const (
	stIF = iota
	stID
	stEX
	stBF
	stWB
	numStages
)

type slot struct {
	valid    bool
	pc       uint32
	ins      arm.Instr
	decodeOK bool
	busy     uint64 // remaining stall cycles in the current stage
	memLat   uint64
}

// Sim is a baseline simulator instance.
type Sim struct {
	ISS  *iss.ARM
	Hier *mem.Hierarchy

	cfg       Config
	lat       [numStages]slot
	fetchPC   uint32
	stopFetch bool
	readyAt   [16]uint64 // 15 GPRs (PC excluded) + flags
	cycles    uint64
	redirects uint64
	execErr   error
}

const flagsIdx = 15

// New builds a baseline simulator for the program.
func New(p *arm.Program, cfg Config) (*Sim, error) {
	if cfg.RAMKB == 0 {
		cfg.RAMKB = 1024
	}
	if cfg.Hier == (mem.HierarchyConfig{}) {
		cfg.Hier = mem.DefaultHierarchyConfig()
	}
	is, err := iss.NewARM(p, cfg.RAMKB)
	if err != nil {
		return nil, err
	}
	return &Sim{ISS: is, Hier: mem.NewHierarchy(cfg.Hier), cfg: cfg, fetchPC: p.Entry}, nil
}

func (s *Sim) srcsReady() bool {
	sl := &s.lat[stID]
	if !sl.decodeOK {
		return true
	}
	for _, r := range sl.ins.SrcRegs() {
		if r != arm.PC && s.cycles < s.readyAt[r] {
			return false
		}
	}
	if sl.ins.ReadsFlags() && s.cycles < s.readyAt[flagsIdx] {
		return false
	}
	return true
}

// step advances the pipeline one cycle, processing stages in reverse
// order so that results written this cycle are visible to younger
// stages — the hand-sequentialization the OSM director replaces.
func (s *Sim) step() {
	// WB: retire.
	s.lat[stWB].valid = false

	// BF -> WB.
	if b := &s.lat[stBF]; b.valid {
		if b.busy > 0 {
			b.busy--
		} else if !s.lat[stWB].valid {
			s.lat[stWB] = *b
			b.valid = false
		}
	}

	// EX -> BF.
	if e := &s.lat[stEX]; e.valid {
		if e.busy > 0 {
			e.busy--
		} else if !s.lat[stBF].valid {
			s.lat[stBF] = *e
			s.lat[stBF].busy = e.memLat
			e.valid = false
		}
	}

	redirected := false

	// ID -> EX: the issue point. Operands must be ready; execution
	// happens on entry (semantics from the shared functional core).
	if d := &s.lat[stID]; d.valid && !s.lat[stEX].valid && s.srcsReady() {
		s.lat[stEX] = *d
		d.valid = false
		redirected = s.issue(&s.lat[stEX])
	}

	// IF -> ID.
	if f := &s.lat[stIF]; f.valid {
		if f.busy > 0 {
			f.busy--
		} else if redirected {
			f.valid = false // squashed wrong-path fetch
		} else if !s.lat[stID].valid {
			s.lat[stID] = *f
			f.valid = false
		}
	}

	// Fetch.
	if !s.stopFetch && !redirected && !s.lat[stIF].valid {
		f := &s.lat[stIF]
		f.valid = true
		f.pc = s.fetchPC
		f.busy = s.Hier.FetchLatency(s.fetchPC)
		f.decodeOK = false
		if s.fetchPC+4 <= s.ISS.RAM.Size() {
			if ins, err := arm.Decode(s.ISS.RAM.Read32(s.fetchPC)); err == nil {
				f.ins, f.decodeOK = ins, true
			}
		}
		s.fetchPC += 4
	}

	s.cycles++
}

// issue executes the operation entering EX and applies its timing
// side effects. It reports whether fetch was redirected.
func (s *Sim) issue(e *slot) bool {
	if !e.decodeOK || s.ISS.CPU.Halted {
		s.execErr = fmt.Errorf("sscalar: wrong-path operation issued at %#x", e.pc)
		s.stopFetch = true
		return true
	}
	cpu := s.ISS.CPU
	condPassed := e.ins.Cond.Passed(cpu.N, cpu.Z, cpu.C, cpu.V)
	if condPassed {
		s.deriveMemTiming(e)
	}
	expected := e.pc + 4
	s.ISS.CPU.SetPC(e.pc)
	if _, err := s.ISS.Step(); err != nil {
		s.execErr = fmt.Errorf("at %#x: %w", e.pc, err)
		s.stopFetch = true
		return true
	}

	var extra uint64
	if condPassed && e.ins.Class() == arm.ClassMul {
		extra = s.mulExtra(e)
		e.busy = extra
	}

	ready := s.cycles + 1 + extra
	if e.ins.Class() == arm.ClassLoad {
		ready = s.cycles + 2 + e.memLat
	}
	for _, dst := range e.ins.DstRegs() {
		if dst != arm.PC {
			s.readyAt[dst] = ready
		}
	}
	if e.ins.WritesFlags() {
		s.readyAt[flagsIdx] = ready
	}

	if s.ISS.CPU.Halted {
		s.stopFetch = true
		s.lat[stID].valid = false
		s.lat[stIF].valid = false
		return true
	}
	if actual := s.ISS.CPU.PC(); actual != expected {
		s.redirects++
		s.fetchPC = actual
		s.lat[stIF].valid = false
		return true
	}
	return false
}

func (s *Sim) mulExtra(e *slot) uint64 {
	if s.cfg.FixedMul {
		return 2
	}
	// Rs was possibly overwritten by execution when Rd == Rs; the
	// pre-execution value is what the hardware sees, so mulExtra is
	// computed by issue before stepping the ISS when exact. Here the
	// baseline keeps the simpler post-read, an accepted source of
	// tiny timing divergence between independent implementations.
	v := s.ISS.CPU.R[e.ins.Rs&0xf]
	switch {
	case v < 1<<8:
		return 0
	case v < 1<<24:
		return 1
	default:
		return 2
	}
}

func (s *Sim) deriveMemTiming(e *slot) {
	ins := &e.ins
	c := s.ISS.CPU
	switch ins.Op {
	case arm.LDR, arm.STR:
		var off uint32
		if ins.HasImm {
			off = ins.Imm
		} else {
			off = c.R[ins.Rm]
			if ins.ShiftAmt > 0 {
				switch ins.Shift {
				case arm.LSL:
					off <<= uint(ins.ShiftAmt)
				case arm.LSR:
					off >>= uint(ins.ShiftAmt)
				case arm.ASR:
					off = uint32(int32(off) >> uint(ins.ShiftAmt))
				case arm.ROR:
					off = off>>uint(ins.ShiftAmt) | off<<(32-uint(ins.ShiftAmt))
				}
			}
		}
		addr := c.R[ins.Rn]
		if ins.Pre {
			if ins.Up {
				addr += off
			} else {
				addr -= off
			}
		}
		e.memLat = s.Hier.DataLatency(addr, ins.Op == arm.STR)
	case arm.LDRH, arm.STRH, arm.LDRSB, arm.LDRSH:
		off := ins.Imm
		if !ins.HasImm {
			off = c.R[ins.Rm]
		}
		addr := c.R[ins.Rn]
		if ins.Pre {
			if ins.Up {
				addr += off
			} else {
				addr -= off
			}
		}
		e.memLat = s.Hier.DataLatency(addr, ins.Op == arm.STRH)
	case arm.LDM, arm.STM:
		n := uint64(0)
		for r := 0; r < 16; r++ {
			if ins.RegList&(1<<r) != 0 {
				n++
			}
		}
		e.memLat = s.Hier.DataLatency(c.R[ins.Rn], ins.Op == arm.STM) + n - 1
	}
}

func (s *Sim) drained() bool {
	for i := range s.lat {
		if s.lat[i].valid {
			return false
		}
	}
	return true
}

// Run simulates until the program exits or maxCycles elapse.
func (s *Sim) Run(maxCycles uint64) (Stats, error) {
	for s.cycles < maxCycles {
		s.step()
		if s.execErr != nil {
			return s.stats(), s.execErr
		}
		if s.ISS.CPU.Halted && s.drained() {
			return s.stats(), nil
		}
	}
	return s.stats(), fmt.Errorf("sscalar: program did not finish within %d cycles", maxCycles)
}

func (s *Sim) stats() Stats {
	st := Stats{Cycles: s.cycles, Instrs: s.ISS.Stats.Instrs, Redirects: s.redirects}
	if s.Hier.ICache != nil {
		st.ICache = s.Hier.ICache.Stats
	}
	if s.Hier.DCache != nil {
		st.DCache = s.Hier.DCache.Stats
	}
	return st
}
