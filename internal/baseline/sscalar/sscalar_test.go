package sscalar

import (
	"fmt"
	"testing"

	"repro/internal/isa/arm"
	"repro/internal/mem"
	"repro/internal/sim/strongarm"
	"repro/internal/workload"
)

func perfect() Config {
	return Config{Hier: mem.HierarchyConfig{DisableCaches: true, DisableTLBs: true}}
}

func runSrc(t *testing.T, src string, cfg Config) Stats {
	t.Helper()
	p, err := arm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

const exit = "\tmov r0, #0\n\tswi #0\n"

func TestBaselineStraightLineCPIOne(t *testing.T) {
	k := 16
	src := ""
	for i := 0; i < k; i++ {
		src += "\tadd r1, r1, #1\n"
	}
	st := runSrc(t, src+exit, perfect())
	if st.Instrs != uint64(k+2) {
		t.Fatalf("instrs=%d", st.Instrs)
	}
	if st.CPI() > 1.5 {
		t.Errorf("CPI=%.2f, want ~1", st.CPI())
	}
}

func TestBaselineLoadUseStall(t *testing.T) {
	pairs := 10
	dep := "\tmov r8, #0x1000\n"
	indep := dep
	for i := 0; i < pairs; i++ {
		dep += "\tldr r2, [r8]\n\tadd r3, r2, #1\n"
		indep += "\tldr r2, [r8]\n\tadd r3, r4, #1\n"
	}
	stDep := runSrc(t, dep+exit, perfect())
	stIndep := runSrc(t, indep+exit, perfect())
	if got := stDep.Cycles - stIndep.Cycles; got != uint64(pairs) {
		t.Errorf("load-use stalls = %d, want %d", got, pairs)
	}
}

func TestBaselineTakenBranchPenalty(t *testing.T) {
	iters := 10
	src := fmt.Sprintf("\tmov r0, #%d\nloop:\tsubs r0, r0, #1\n\tbne loop\n", iters)
	st := runSrc(t, src+exit, perfect())
	if st.Redirects != uint64(iters-1) {
		t.Errorf("redirects=%d, want %d", st.Redirects, iters-1)
	}
}

// The two independent implementations of the same micro-architecture
// must agree cycle-for-cycle when configured identically — this is
// the strongest cross-validation of both models, and the reason the
// baseline can serve as the Table-1 timing oracle.
func TestBaselineMatchesOSMModelExactly(t *testing.T) {
	programs := []string{
		// ALU mix with dependences.
		"\tmov r1, #3\n\tadd r2, r1, r1\n\tadd r2, r2, r2\n\tsub r3, r2, r1\n" + exit,
		// Load-use chains.
		"\tmov r8, #0x1000\n\tstr r8, [r8]\n\tldr r1, [r8]\n\tadd r2, r1, #1\n\tldr r3, [r8]\n\tadd r4, r3, r2\n" + exit,
		// Branchy loop.
		"\tmov r0, #12\nloop:\tsubs r0, r0, #1\n\tbne loop\n" + exit,
		// Multiplies with varying widths.
		"\tldr r2, =0x00345678\n\tmov r3, #10\n\tmul r4, r3, r2\n\tmul r5, r4, r3\n\tadd r6, r5, r4\n" + exit,
		// Block transfers and bytes.
		"\tmov r8, #0x2000\n\tmov r0, #1\n\tmov r1, #2\n\tstmia r8, {r0, r1}\n\tldmia r8, {r2, r3}\n\tstrb r2, [r8, #8]\n\tldrb r4, [r8, #8]\n" + exit,
		// Conditional execution.
		"\tmovs r1, #0\n\taddeq r2, r2, #7\n\taddne r2, r2, #9\n\tcmp r2, #7\n\tbne off\n\tadd r3, r3, #1\noff:" + exit,
	}
	for pi, src := range programs {
		for _, withMem := range []bool{false, true} {
			cfgS, cfgB := strongarm.Config{}, Config{}
			if !withMem {
				h := mem.HierarchyConfig{DisableCaches: true, DisableTLBs: true}
				cfgS.Hier, cfgB.Hier = h, h
			}
			p, err := arm.Assemble(src)
			if err != nil {
				t.Fatal(err)
			}
			osmSim, err := strongarm.New(p, cfgS)
			if err != nil {
				t.Fatal(err)
			}
			osmStats, err := osmSim.Run(1_000_000)
			if err != nil {
				t.Fatalf("program %d (osm): %v", pi, err)
			}
			base, err := New(p, cfgB)
			if err != nil {
				t.Fatal(err)
			}
			baseStats, err := base.Run(1_000_000)
			if err != nil {
				t.Fatalf("program %d (baseline): %v", pi, err)
			}
			if osmStats.Instrs != baseStats.Instrs {
				t.Errorf("program %d mem=%v: instrs %d vs %d", pi, withMem, osmStats.Instrs, baseStats.Instrs)
			}
			if osmStats.Cycles != baseStats.Cycles {
				t.Errorf("program %d mem=%v: cycles OSM=%d baseline=%d", pi, withMem,
					osmStats.Cycles, baseStats.Cycles)
			}
		}
	}
}

func TestBaselineMatchesOSMOnKernels(t *testing.T) {
	for _, w := range workload.All() {
		n := w.DefaultN / 10
		p, err := w.ARMProgram(n)
		if err != nil {
			t.Fatal(err)
		}
		osmSim, err := strongarm.New(p, strongarm.Config{})
		if err != nil {
			t.Fatal(err)
		}
		osmStats, err := osmSim.Run(100_000_000)
		if err != nil {
			t.Fatalf("%s (osm): %v", w.Name, err)
		}
		base, err := New(p, Config{})
		if err != nil {
			t.Fatal(err)
		}
		baseStats, err := base.Run(100_000_000)
		if err != nil {
			t.Fatalf("%s (baseline): %v", w.Name, err)
		}
		if base.ISS.Reported[0] != w.Ref(n) {
			t.Errorf("%s: baseline checksum wrong", w.Name)
		}
		if osmStats.Cycles != baseStats.Cycles {
			t.Errorf("%s: cycles OSM=%d baseline=%d (%.2f%% apart)", w.Name,
				osmStats.Cycles, baseStats.Cycles,
				100*float64(int64(osmStats.Cycles)-int64(baseStats.Cycles))/float64(baseStats.Cycles))
		}
	}
}

func TestBaselineRunCycleLimit(t *testing.T) {
	p, err := arm.Assemble("loop: b loop")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, perfect())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(500); err == nil {
		t.Fatal("infinite loop must exhaust the cycle budget")
	}
}
