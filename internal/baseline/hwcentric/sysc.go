// Package hwcentric is the SystemC-style baseline of the evaluation:
// a hardware-centric PowerPC 750 behavioural model in which explicit
// modules communicate through ports and signals under a synchronous
// evaluate/commit (delta-cycle) kernel — the modeling style of the
// SystemC PPC-750 model the paper compares against ("more than 200
// wires or buses are used to connect 20 modules").
//
// Everything the OSM model encodes in edge conditions and token
// transactions is spelled out here as inter-module wiring: request/
// grant handshakes between dispatch and the function units, busy
// lines, result buses, queue-occupancy signals. The cost is exactly
// what the paper observes: more specification complexity and slower
// simulation, because every module is evaluated every delta of every
// cycle whether or not it has work.
package hwcentric

// Signal is a delta-cycle signal: reads see the value committed at
// the previous delta, writes take effect at the next commit.
type Signal struct {
	name    string
	cur, nx uint64
	dirty   bool
	kernel  *Kernel
}

// Read returns the current (committed) value.
func (s *Signal) Read() uint64 {
	s.kernel.reads++
	return s.cur
}

// Write schedules v for the next delta commit.
func (s *Signal) Write(v uint64) {
	s.kernel.writes++
	if v != s.cur || s.dirty {
		s.nx = v
		s.dirty = true
	}
}

// Bool reads the signal as a boolean.
func (s *Signal) Bool() bool { return s.Read() != 0 }

// WriteBool writes a boolean.
func (s *Signal) WriteBool(v bool) {
	if v {
		s.Write(1)
	} else {
		s.Write(0)
	}
}

// Module is a combinational process evaluated every delta.
type Module interface {
	Name() string
	// Eval reads input signals and writes output signals.
	Eval()
}

// Edged is a sequential process clocked at the end of the cycle.
type Edged interface {
	// Edge commits the module's registered state.
	Edge(cycle uint64)
}

// Kernel is the evaluate/commit simulation kernel.
type Kernel struct {
	signals []*Signal
	modules []Module
	edged   []Edged
	cycle   uint64
	// MaxDeltas bounds the per-cycle settle loop (default 4).
	MaxDeltas int
	// Activity counters: the cost the paper attributes to explicit
	// port-based communication.
	reads, writes uint64
	evals         uint64
}

// NewKernel returns an empty kernel.
func NewKernel() *Kernel { return &Kernel{MaxDeltas: 4} }

// NewSignal creates and registers a named signal.
func (k *Kernel) NewSignal(name string) *Signal {
	s := &Signal{name: name, kernel: k}
	k.signals = append(k.signals, s)
	return s
}

// Add registers modules; those implementing Edged are also clocked.
func (k *Kernel) Add(ms ...Module) {
	for _, m := range ms {
		k.modules = append(k.modules, m)
		if e, ok := m.(Edged); ok {
			k.edged = append(k.edged, e)
		}
	}
}

// Cycle returns the number of completed clock cycles.
func (k *Kernel) Cycle() uint64 { return k.cycle }

// Signals and Evals report activity for the complexity comparison.
func (k *Kernel) Activity() (signalOps, moduleEvals uint64) {
	return k.reads + k.writes, k.evals
}

// SignalCount returns the number of wires in the design.
func (k *Kernel) SignalCount() int { return len(k.signals) }

// commit applies pending signal writes; it reports whether anything
// changed (another delta is needed).
func (k *Kernel) commit() bool {
	changed := false
	for _, s := range k.signals {
		if s.dirty {
			if s.nx != s.cur {
				changed = true
			}
			s.cur = s.nx
			s.dirty = false
		}
	}
	return changed
}

// Step runs one clock cycle: deltas until the signals settle (bounded
// by MaxDeltas), then the clock edge.
func (k *Kernel) Step() {
	for d := 0; d < k.MaxDeltas; d++ {
		for _, m := range k.modules {
			k.evals++
			m.Eval()
		}
		if !k.commit() && d > 0 {
			break
		}
	}
	for _, e := range k.edged {
		e.Edge(k.cycle)
	}
	k.cycle++
}
