package hwcentric

import (
	"testing"

	"repro/internal/isa/ppc"
	"repro/internal/sim/ppc750"
	"repro/internal/workload"
)

func TestKernelSignalsSettle(t *testing.T) {
	k := NewKernel()
	a := k.NewSignal("a")
	b := k.NewSignal("b")
	k.Add(modFunc{name: "m", eval: func() { b.Write(a.Read() + 1) }})
	a.Write(10)
	k.Step()
	if b.Read() != 11 {
		t.Fatalf("b = %d, want 11 (value propagated through deltas)", b.Read())
	}
	if k.Cycle() != 1 {
		t.Fatalf("cycle = %d", k.Cycle())
	}
	if ops, evals := k.Activity(); ops == 0 || evals == 0 {
		t.Fatal("activity counters must record signal traffic")
	}
	if k.SignalCount() != 2 {
		t.Fatalf("wires = %d", k.SignalCount())
	}
}

type modFunc struct {
	name string
	eval func()
}

func (m modFunc) Name() string { return m.name }
func (m modFunc) Eval()        { m.eval() }

func TestKernelsCorrectUnderHWModel(t *testing.T) {
	for _, w := range workload.All() {
		n := w.DefaultN / 5
		p, err := w.PPCProgram(n)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(p, Config{})
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.Run(1_000_000_000)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if len(s.ISS.Reported) != 1 || s.ISS.Reported[0] != w.Ref(n) {
			t.Errorf("%s: checksum %v, want %#x", w.Name, s.ISS.Reported, w.Ref(n))
		}
		if cpi := st.CPI(); cpi < 0.5 || cpi > 8 {
			t.Errorf("%s: implausible CPI %.2f", w.Name, cpi)
		}
	}
}

// The paper validates the OSM 750 model against the SystemC model and
// finds timing differences within 3%. Our two independent
// implementations must agree to within a few percent on every kernel.
func TestTimingCloseToOSMModel(t *testing.T) {
	const tolerance = 0.08
	for _, w := range workload.All() {
		n := w.DefaultN / 2
		p, err := w.PPCProgram(n)
		if err != nil {
			t.Fatal(err)
		}
		osmSim, err := ppc750.New(p, ppc750.Config{})
		if err != nil {
			t.Fatal(err)
		}
		osmStats, err := osmSim.Run(1_000_000_000)
		if err != nil {
			t.Fatalf("%s (osm): %v", w.Name, err)
		}
		hw, err := New(p, Config{})
		if err != nil {
			t.Fatal(err)
		}
		hwStats, err := hw.Run(1_000_000_000)
		if err != nil {
			t.Fatalf("%s (hw): %v", w.Name, err)
		}
		diff := (float64(hwStats.Cycles) - float64(osmStats.Cycles)) / float64(osmStats.Cycles)
		if diff < -tolerance || diff > tolerance {
			t.Errorf("%s: OSM=%d HW=%d cycles (%.1f%% apart, tolerance %.0f%%)",
				w.Name, osmStats.Cycles, hwStats.Cycles, 100*diff, 100*tolerance)
		}
	}
}

func TestActivityCountersExposeComplexity(t *testing.T) {
	w := workload.ByName("g721/dec")
	p, err := w.PPCProgram(50)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Run(1_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Wires < 10 {
		t.Errorf("expected a port-rich design, got %d wires", st.Wires)
	}
	if st.SignalOps < st.Cycles*10 {
		t.Errorf("expected heavy signal traffic: %d ops over %d cycles", st.SignalOps, st.Cycles)
	}
	if st.ModuleEvals < st.Cycles*8 {
		t.Errorf("every module must evaluate every cycle: %d evals over %d cycles",
			st.ModuleEvals, st.Cycles)
	}
}

func TestHWRunCycleLimit(t *testing.T) {
	p, err := ppc.Assemble("loop: b loop")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(2000); err == nil {
		t.Fatal("infinite loop must exhaust the cycle budget")
	}
}
