package hwcentric

import (
	"fmt"
	"math"

	"repro/internal/isa/ppc"
	"repro/internal/iss"
	"repro/internal/mem"
	"repro/internal/sim/ppc750"
)

// Config parameterizes the baseline; zero values select the PowerPC
// 750 organization used by the OSM model so the two are comparable.
type Config struct {
	Hier                                       mem.HierarchyConfig
	RAMKB                                      int
	FetchQueue, CompletionQueue, RenameBuffers int
	FetchWidth, DispatchWidth, CompleteWidth   int
	BHTEntries, BTICEntries                    int
}

func (c *Config) fill() {
	if c.RAMKB == 0 {
		c.RAMKB = 1024
	}
	if c.FetchQueue == 0 {
		c.FetchQueue = 6
	}
	if c.CompletionQueue == 0 {
		c.CompletionQueue = 6
	}
	if c.RenameBuffers == 0 {
		c.RenameBuffers = 6
	}
	if c.FetchWidth == 0 {
		c.FetchWidth = 4
	}
	if c.DispatchWidth == 0 {
		c.DispatchWidth = 2
	}
	if c.CompleteWidth == 0 {
		c.CompleteWidth = 2
	}
	if c.BHTEntries == 0 {
		c.BHTEntries = 512
	}
	if c.BTICEntries == 0 {
		c.BTICEntries = 64
	}
	if c.Hier == (mem.HierarchyConfig{}) {
		c.Hier = mem.HierarchyConfig{
			ICacheKB: 32, DCacheKB: 32, Ways: 8, LineBytes: 32,
			HitLatency: 0, MemLatency: 25,
			TLBEntries: 64, TLBMissPenalty: 25,
			WriteBack: true,
		}
	}
}

// Stats reports a finished simulation.
type Stats struct {
	Cycles      uint64
	Instrs      uint64
	Mispredicts uint64
	SignalOps   uint64
	ModuleEvals uint64
	Wires       int
}

// CPI returns cycles per instruction.
func (s Stats) CPI() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instrs)
}

const notDone = math.MaxUint64

// hwDecoded caches the static per-instruction facts.
type hwDecoded struct {
	ins   ppc.Instr
	ok    bool
	class ppc.Class
	srcs  []int
	dsts  []int
	gprs  int
}

// hwOp is an in-flight operation's payload, passed between modules
// the way the SystemC model passes instruction objects through
// channels.
type hwOp struct {
	pc            uint32
	ins           ppc.Instr
	decodeOK      bool
	class         ppc.Class
	predictedNext uint32
	actualNext    uint32
	indirect      bool
	redirect      bool
	deps          []*hwOp
	srcs, dsts    []int
	gprs          int
	execDoneAt    uint64
	renameBufs    int
	execLat       uint64
	memAddr       uint32
	isMem         bool
	isStore       bool
}

// Sim is the hardware-centric PowerPC 750 baseline.
type Sim struct {
	ISS  *iss.PPC
	Hier *mem.Hierarchy
	K    *Kernel

	cfg         Config
	decodeCache map[uint32]*hwDecoded
	bht         *ppc750.BHT
	btic        *ppc750.BTIC

	// Shared channels (payload queues).
	iq []*hwOp
	cq []*hwOp

	// Register file state: newest in-flight writer per index.
	lastWriter [35]*hwOp
	renameUsed int

	// Wires.
	sigFuFree, sigRsFree []*Signal
	sigIQFree            *Signal
	sigCQFree            *Signal
	sigRenameFree        *Signal
	sigHold              *Signal
	sigHalt              *Signal

	units    []*hwUnit
	fetch    *fetchUnit
	dispatch *dispatchUnit
	complete *completionUnit

	retired     uint64
	mispredicts uint64
	execErr     error
}

// New builds the baseline for the program.
func New(p *ppc.Program, cfg Config) (*Sim, error) {
	cfg.fill()
	is, err := iss.NewPPC(p, cfg.RAMKB)
	if err != nil {
		return nil, err
	}
	s := &Sim{
		ISS:  is,
		Hier: mem.NewHierarchy(cfg.Hier),
		K:    NewKernel(),
		cfg:  cfg,
		bht:  ppc750.NewBHT(cfg.BHTEntries),
		btic: ppc750.NewBTIC(cfg.BTICEntries),
	}
	s.decodeCache = make(map[uint32]*hwDecoded)
	s.sigIQFree = s.K.NewSignal("iq_free")
	s.sigCQFree = s.K.NewSignal("cq_free")
	s.sigRenameFree = s.K.NewSignal("rename_free")
	s.sigHold = s.K.NewSignal("fetch_hold")
	s.sigHalt = s.K.NewSignal("halt")

	names := []string{"iu2", "iu1", "lsu", "bpu", "sru"}
	takes := []func(ppc.Class) bool{
		func(c ppc.Class) bool { return c == ppc.ClassALU },
		func(c ppc.Class) bool { return c == ppc.ClassALU || c == ppc.ClassMul },
		func(c ppc.Class) bool { return c == ppc.ClassLoad || c == ppc.ClassStore },
		func(c ppc.Class) bool { return c == ppc.ClassBranch },
		func(c ppc.Class) bool { return c == ppc.ClassSys },
	}
	for i, n := range names {
		u := &hwUnit{sim: s, name: n, takes: takes[i],
			fuFree: s.K.NewSignal(n + "_fu_free"),
			rsFree: s.K.NewSignal(n + "_rs_free"),
		}
		s.units = append(s.units, u)
		s.sigFuFree = append(s.sigFuFree, u.fuFree)
		s.sigRsFree = append(s.sigRsFree, u.rsFree)
	}
	s.fetch = &fetchUnit{sim: s, pc: p.Entry}
	s.dispatch = &dispatchUnit{sim: s}
	s.complete = &completionUnit{sim: s}

	// Module registration order fixes the intra-edge order: units
	// drain and issue, completion retires (freeing rename buffers the
	// same cycle, like the OSM director's seniors-first rank order),
	// dispatch fills, fetch refills.
	for _, u := range s.units {
		s.K.Add(u)
	}
	s.K.Add(s.complete, s.dispatch, s.fetch)
	return s, nil
}

// ---- register-file helpers (the regfile "module" is a channel all
// others call into, like an sc_interface) ----

func srcIdx(ins *ppc.Instr) []int {
	out := ins.SrcRegs()
	if ins.ReadsCR() {
		out = append(out, 32)
	}
	if ins.ReadsLR() {
		out = append(out, 33)
	}
	if ins.ReadsCTR() {
		out = append(out, 34)
	}
	return out
}

func dstIdx(ins *ppc.Instr) (out []int, gprs int) {
	out = ins.DstRegs()
	gprs = len(out)
	if ins.WritesCR() {
		out = append(out, 32)
	}
	if ins.WritesLR() {
		out = append(out, 33)
	}
	if ins.WritesCTR() {
		out = append(out, 34)
	}
	return out, gprs
}

// decode returns the cached static decoding of the word at pc.
func (s *Sim) decode(pc uint32) *hwDecoded {
	if d, ok := s.decodeCache[pc]; ok {
		return d
	}
	d := &hwDecoded{}
	if pc+4 <= s.ISS.RAM.Size() {
		if ins, err := ppc.Decode(s.ISS.RAM.Read32(pc)); err == nil {
			d.ins, d.ok = ins, true
			d.class = ins.Class()
			d.srcs = srcIdx(&ins)
			d.dsts, d.gprs = dstIdx(&ins)
		}
	}
	s.decodeCache[pc] = d
	return d
}

func (s *Sim) srcsReady(o *hwOp, cycle uint64) bool {
	for _, r := range o.srcs {
		if w := s.lastWriter[r]; w != nil && w != o && w.execDoneAt > cycle {
			return false
		}
	}
	return true
}

func (s *Sim) depsDone(o *hwOp, cycle uint64) bool {
	for _, d := range o.deps {
		if d.execDoneAt > cycle {
			return false
		}
	}
	return true
}

// Run simulates until the program exits or maxCycles elapse.
func (s *Sim) Run(maxCycles uint64) (Stats, error) {
	for s.K.Cycle() < maxCycles {
		s.K.Step()
		if s.execErr != nil {
			return s.stats(), s.execErr
		}
		if s.ISS.CPU.Halted && s.drained() {
			if s.retired != s.ISS.Stats.Instrs {
				return s.stats(), fmt.Errorf("hwcentric: %d retired vs %d executed",
					s.retired, s.ISS.Stats.Instrs)
			}
			return s.stats(), nil
		}
	}
	return s.stats(), fmt.Errorf("hwcentric: program did not finish within %d cycles", maxCycles)
}

func (s *Sim) drained() bool {
	if len(s.iq) != 0 || len(s.cq) != 0 {
		return false
	}
	for _, u := range s.units {
		if u.exec.valid || u.rs.valid {
			return false
		}
	}
	return true
}

func (s *Sim) stats() Stats {
	sig, evals := s.K.Activity()
	return Stats{
		Cycles:      s.K.Cycle(),
		Instrs:      s.ISS.Stats.Instrs,
		Mispredicts: s.mispredicts,
		SignalOps:   sig,
		ModuleEvals: evals,
		Wires:       s.K.SignalCount(),
	}
}
