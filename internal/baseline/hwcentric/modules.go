package hwcentric

import (
	"fmt"

	"repro/internal/isa/ppc"
)

// latch is a one-entry pipeline register.
type latch struct {
	valid bool
	op    *hwOp
}

// hwUnit is one function unit module with its reservation station.
type hwUnit struct {
	sim   *Sim
	name  string
	takes func(ppc.Class) bool

	rs, exec latch

	// Output wires.
	fuFree *Signal
	rsFree *Signal
}

// Name identifies the module.
func (u *hwUnit) Name() string { return u.name }

// Eval drives the availability wires the dispatch unit listens to,
// anticipating this edge's own reservation-station issue: a unit
// whose RS operation will issue advertises the RS as free (same-cycle
// refill) and the FU as taken — the "grant" wires of the dispatch
// handshake.
func (u *hwUnit) Eval() {
	cycle := u.sim.K.Cycle()
	execFree := !u.exec.valid || u.exec.op.execDoneAt <= cycle
	rsWillIssue := u.rs.valid && execFree && u.sim.depsDone(u.rs.op, cycle)
	u.fuFree.WriteBool(execFree && !rsWillIssue)
	u.rsFree.WriteBool(!u.rs.valid || rsWillIssue)
}

// Edge drains the execute latch and issues from the reservation
// station.
func (u *hwUnit) Edge(cycle uint64) {
	if u.exec.valid && u.exec.op.execDoneAt <= cycle {
		u.exec.valid = false
	}
	if !u.exec.valid && u.rs.valid && u.sim.depsDone(u.rs.op, cycle) {
		u.start(u.rs.op, cycle)
		u.rs.valid = false
	}
}

// start places an operation in the execute latch with its scheduled
// completion time, pricing the data cache for memory operations.
// Branches resolve as execution begins (training the predictors and
// releasing a held fetch), matching the OSM model.
func (u *hwUnit) start(o *hwOp, cycle uint64) {
	lat := o.execLat
	if o.isMem {
		lat += u.sim.Hier.DataLatency(o.memAddr, o.isStore)
	}
	if lat == 0 {
		lat = 1
	}
	o.execDoneAt = cycle + lat
	u.exec = latch{valid: true, op: o}
	if o.class == ppc.ClassBranch {
		u.sim.resolveBranch(o, cycle)
	}
}

// fetchUnit follows the predicted instruction stream into the fetch
// queue.
type fetchUnit struct {
	sim      *Sim
	pc       uint32
	held     bool
	stop     bool
	resumeAt uint64
}

// Name identifies the module.
func (f *fetchUnit) Name() string { return "fetch" }

// Eval mirrors the hold state onto the fetch_hold wire.
func (f *fetchUnit) Eval() {
	f.sim.sigHold.WriteBool(f.held || f.stop)
	f.sim.sigIQFree.Write(uint64(f.sim.cfg.FetchQueue - len(f.sim.iq)))
}

// Edge fetches up to FetchWidth instructions along the predicted
// path.
func (f *fetchUnit) Edge(cycle uint64) {
	s := f.sim
	if f.stop || f.held || cycle < f.resumeAt {
		return
	}
	for n := 0; n < s.cfg.FetchWidth && len(s.iq) < s.cfg.FetchQueue; n++ {
		if f.held || cycle < f.resumeAt {
			break
		}
		o := &hwOp{pc: f.pc, execDoneAt: notDone}
		if lat := s.Hier.FetchLatency(f.pc); lat > 0 {
			f.resumeAt = maxu(f.resumeAt, cycle+lat)
		}
		if d := s.decode(f.pc); d.ok {
			o.ins, o.decodeOK = d.ins, true
			o.class = d.class
			o.srcs, o.dsts, o.gprs = d.srcs, d.dsts, d.gprs
		}
		o.predictedNext = o.pc + 4
		if o.decodeOK {
			switch o.ins.Op {
			case ppc.B:
				o.predictedNext = target(o.pc, int64(o.ins.LI), o.ins.AA)
				f.takenBubble(o, cycle)
			case ppc.BC:
				if s.bht.Predict(o.pc) {
					o.predictedNext = target(o.pc, int64(o.ins.BD), o.ins.AA)
					f.takenBubble(o, cycle)
				}
			case ppc.BCLR, ppc.BCCTR:
				o.indirect = true
				f.held = true
			}
		}
		s.iq = append(s.iq, o)
		f.pc = o.predictedNext
	}
}

func (f *fetchUnit) takenBubble(o *hwOp, cycle uint64) {
	if _, hit := f.sim.btic.Lookup(o.pc); !hit {
		f.resumeAt = maxu(f.resumeAt, cycle+1)
	}
}

func target(pc uint32, disp int64, abs bool) uint32 {
	if abs {
		return uint32(disp)
	}
	return uint32(int64(pc) + disp)
}

func maxu(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// dispatchUnit dispatches up to DispatchWidth queue heads in order,
// routing each to a free function unit (when its operands are ready)
// or to the unit's reservation station.
type dispatchUnit struct {
	sim *Sim
	// plan is rebuilt every delta from the wires; Edge applies the
	// settled plan.
	plan []dispatchPlan
}

type dispatchPlan struct {
	unit int
	fast bool
}

// Name identifies the module.
func (d *dispatchUnit) Name() string { return "dispatch" }

// Eval builds the dispatch plan from the availability wires.
func (d *dispatchUnit) Eval() {
	s := d.sim
	d.plan = d.plan[:0]
	cycle := s.K.Cycle()
	cqFree := s.cfg.CompletionQueue - len(s.cq)
	renFree := s.cfg.RenameBuffers - s.renameUsed
	// Account for this cycle's in-order retirements (the completion
	// unit runs before dispatch at the edge, so its freed entries are
	// usable in the same cycle — the "same control step handoff" the
	// OSM director gets from rank-ordered scheduling).
	for n := 0; n < s.cfg.CompleteWidth && n < len(s.cq); n++ {
		if s.cq[n].execDoneAt >= cycle {
			break
		}
		cqFree++
		renFree += s.cq[n].renameBufs
	}
	var fuTaken, rsTaken [8]bool
	for i := 0; i < len(s.iq) && len(d.plan) < s.cfg.DispatchWidth; i++ {
		o := s.iq[i]
		if !o.decodeOK {
			// Surface the model error through execute() rather than
			// wedging the queue.
			d.plan = append(d.plan, dispatchPlan{unit: 4, fast: true})
			break
		}
		gprs := o.gprs
		if cqFree <= 0 || renFree < gprs {
			break
		}
		route := -1
		fast := false
		for ui, u := range s.units {
			if !u.takes(o.class) {
				continue
			}
			if !fuTaken[ui] && u.fuFree.Bool() && s.srcsReady(o, cycle) {
				route, fast = ui, true
				break
			}
			if !rsTaken[ui] && u.rsFree.Bool() {
				route, fast = ui, false
				break
			}
		}
		if route < 0 {
			break // in-order dispatch: a stalled head blocks the rest
		}
		if fast {
			fuTaken[route] = true
		} else {
			rsTaken[route] = true
		}
		d.plan = append(d.plan, dispatchPlan{unit: route, fast: fast})
		cqFree--
		renFree -= gprs
	}
	s.sigCQFree.Write(uint64(cqFree))
	s.sigRenameFree.Write(uint64(renFree))
}

// Edge applies the plan: functional execution (in order), rename
// registration, queue movements and misprediction detection.
func (d *dispatchUnit) Edge(cycle uint64) {
	s := d.sim
	for _, pl := range d.plan {
		if len(s.iq) == 0 {
			break
		}
		o := s.iq[0]
		u := s.units[pl.unit]
		// Recheck queue capacities post-completion: the plan was
		// built before this edge's retirements freed entries, and the
		// completion unit runs first so same-cycle reuse is legal.
		if len(s.cq) >= s.cfg.CompletionQueue ||
			s.renameUsed+o.gprs > s.cfg.RenameBuffers {
			break
		}
		// Re-validate against post-units-edge latch state: the wires
		// were sampled before this edge's reservation-station issues,
		// and an earlier dispatch in this same edge may have put a
		// producer of this operation in flight (stale srcs check).
		if pl.fast && (u.exec.valid || !s.srcsReady(o, cycle)) {
			if !u.rs.valid {
				pl.fast = false
			} else {
				break
			}
		}
		if !pl.fast && u.rs.valid {
			break
		}
		if !d.execute(o, cycle) {
			return
		}
		s.iq = s.iq[1:]
		// Register renames and capture dependences (including
		// producers already executing: readiness is judged by time).
		o.deps = o.deps[:0]
		for _, r := range o.srcs {
			if w := s.lastWriter[r]; w != nil && w != o {
				o.deps = append(o.deps, w)
			}
		}
		for _, r := range o.dsts {
			s.lastWriter[r] = o
		}
		o.renameBufs = o.gprs
		s.renameUsed += o.gprs
		s.cq = append(s.cq, o)
		if pl.fast {
			u.start(o, cycle)
		} else {
			u.rs = latch{valid: true, op: o}
		}
		if o.redirect || s.ISS.CPU.Halted {
			break
		}
	}
}

// execute runs the operation on the functional core and handles
// control-flow outcomes. It reports false on a model error.
func (d *dispatchUnit) execute(o *hwOp, cycle uint64) bool {
	s := d.sim
	if !o.decodeOK || s.ISS.CPU.Halted {
		s.execErr = fmt.Errorf("hwcentric: wrong-path operation dispatched at %#x", o.pc)
		s.fetch.stop = true
		return false
	}
	s.deriveTiming(o)
	s.ISS.CPU.NextPC = o.pc
	if _, err := s.ISS.Step(); err != nil {
		s.execErr = fmt.Errorf("at %#x: %w", o.pc, err)
		s.fetch.stop = true
		return false
	}
	if s.ISS.CPU.Halted {
		s.fetch.stop = true
		s.iq = s.iq[:1] // flush everything younger
		return true
	}
	actual := s.ISS.CPU.NextPC
	o.actualNext = actual
	if o.indirect || actual != o.predictedNext {
		if !o.indirect {
			s.mispredicts++
		}
		o.redirect = true
		s.fetch.pc = actual
		s.fetch.held = true
		// Cancel pending wrong-path fetch stalls.
		s.fetch.resumeAt = 0
		s.iq = s.iq[:1] // flush the wrong path (everything younger)
	}
	return true
}

// deriveTiming fixes execute latency and memory address from the
// pre-execution register state (identical rules to the OSM model).
func (s *Sim) deriveTiming(o *hwOp) {
	c := s.ISS.CPU
	ins := &o.ins
	switch o.class {
	case ppc.ClassMul:
		switch ins.Op {
		case ppc.DIVW, ppc.DIVWU:
			o.execLat = 19
		case ppc.MULLI:
			o.execLat = 3
		default:
			v := c.R[ins.RB]
			switch {
			case v < 1<<16:
				o.execLat = 2
			case v < 1<<24:
				o.execLat = 3
			default:
				o.execLat = 4
			}
		}
	case ppc.ClassLoad, ppc.ClassStore:
		o.isMem = true
		o.isStore = o.class == ppc.ClassStore
		o.execLat = 2
		base := uint32(0)
		switch ins.Op {
		case ppc.LWZU, ppc.STWU:
			base = c.R[ins.RA]
		default:
			if ins.RA != 0 {
				base = c.R[ins.RA]
			}
		}
		switch ins.Op {
		case ppc.LWZX, ppc.STWX, ppc.LBZX, ppc.STBX, ppc.LHZX, ppc.LHAX, ppc.STHX:
			o.memAddr = base + c.R[ins.RB]
		default:
			o.memAddr = base + uint32(ins.SI)
		}
	default:
		o.execLat = 1
	}
}

func (s *Sim) resolveBranch(o *hwOp, cycle uint64) {
	actualTaken := o.actualNext != o.pc+4
	if o.ins.Op == ppc.BC {
		s.bht.Update(o.pc, actualTaken)
	}
	if actualTaken && !o.indirect {
		s.btic.Insert(o.pc, o.actualNext)
	}
	if o.redirect {
		s.fetch.held = false
		s.fetch.resumeAt = maxu(s.fetch.resumeAt, cycle+1)
	}
}

// completionUnit retires executed operations from the completion
// queue in order, up to CompleteWidth per cycle.
type completionUnit struct {
	sim *Sim
}

// Name identifies the module.
func (c *completionUnit) Name() string { return "completion" }

// Eval publishes the halt wire (end-of-program handshake).
func (c *completionUnit) Eval() {
	c.sim.sigHalt.WriteBool(c.sim.ISS.CPU.Halted)
}

// Edge retires in order; an operation completes no earlier than the
// cycle after it finished executing.
func (c *completionUnit) Edge(cycle uint64) {
	s := c.sim
	for n := 0; n < s.cfg.CompleteWidth && len(s.cq) > 0; n++ {
		o := s.cq[0]
		if o.execDoneAt >= cycle {
			break
		}
		s.cq = s.cq[1:]
		s.renameUsed -= o.renameBufs
		for i, w := range s.lastWriter {
			if w == o {
				s.lastWriter[i] = nil
			}
		}
		s.retired++
	}
}
