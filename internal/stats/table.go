// Package stats provides the result-reporting utilities of the
// benchmark harness: aligned text tables in the style of the paper's
// Tables 1 and 2, and the source-line counter behind the Table 2
// productivity comparison.
package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	// Title is printed above the table when non-empty.
	Title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; missing cells render empty.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(row...)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Fprint writes the rendered table to w.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	line := func(cells []string) {
		for i, width := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", width, c)
		}
		fmt.Fprintln(w)
	}
	line(t.headers)
	rule := make([]string, len(t.headers))
	for i, width := range widths {
		rule[i] = strings.Repeat("-", width)
	}
	line(rule)
	for _, r := range t.rows {
		line(r)
	}
}
