package stats

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
)

// CountFileLoC counts the source lines of one Go file the way the
// paper's Table 2 does: excluding comments and blank lines.
func CountFileLoC(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	inBlock := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if inBlock {
			if idx := strings.Index(line, "*/"); idx >= 0 {
				line = strings.TrimSpace(line[idx+2:])
				inBlock = false
			} else {
				continue
			}
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "//") {
			continue
		}
		if strings.HasPrefix(line, "/*") {
			if !strings.Contains(line, "*/") {
				inBlock = true
			}
			continue
		}
		n++
	}
	return n, sc.Err()
}

// CountDirLoC sums the source lines of the non-test Go files directly
// inside dir.
func CountDirLoC(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		n, err := CountFileLoC(filepath.Join(dir, name))
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// CountFilesLoC sums the source lines of the named files.
func CountFilesLoC(paths ...string) (int, error) {
	total := 0
	for _, p := range paths {
		n, err := CountFileLoC(p)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}
