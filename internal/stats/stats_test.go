package stats

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("betabeta", 2.5)
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[2], "---") {
		t.Errorf("header/rule wrong: %q", out)
	}
	if !strings.Contains(lines[4], "2.50") {
		t.Errorf("AddRowf float formatting wrong: %q", lines[4])
	}
	// Column alignment: "alpha" padded to "betabeta" width.
	if !strings.HasPrefix(lines[3], "alpha   ") {
		t.Errorf("column padding wrong: %q", lines[3])
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	if out := tb.String(); !strings.Contains(out, "only") {
		t.Error("short rows must render")
	}
}

func TestCountFileLoC(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.go")
	src := `// package comment
package x

/* block
comment */
func F() int { // trailing comments count as code lines
	return 1
}

/* one-line block */
var Y = 2
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := CountFileLoC(path)
	if err != nil {
		t.Fatal(err)
	}
	// package x / func F / return 1 / } / var Y = 5 code lines
	if n != 5 {
		t.Fatalf("loc = %d, want 5", n)
	}
}

func TestCountDirLoC(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "a.go"), []byte("package a\nvar X = 1\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "a_test.go"), []byte("package a\nvar T = 1\nvar U = 2\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "notgo.txt"), []byte("hello\n"), 0o644)
	n, err := CountDirLoC(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loc = %d, want 2 (tests and non-Go excluded)", n)
	}
	if _, err := CountDirLoC(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing dir must error")
	}
	if _, err := CountFilesLoC(filepath.Join(dir, "a.go"), filepath.Join(dir, "missing.go")); err == nil {
		t.Fatal("missing file must error")
	}
	if n, _ := CountFilesLoC(filepath.Join(dir, "a.go")); n != 2 {
		t.Fatalf("CountFilesLoC = %d, want 2", n)
	}
}
