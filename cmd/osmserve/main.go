// Osmserve is the simulation service: it hosts concurrent interactive
// simulation sessions — each a cycle-accurate OSM model — behind a
// bounded run-queue scheduler, over an HTTP/JSON control plane with
// admission control, idle-session eviction and live observability.
// An optional binary wire listener (-wire-addr) serves the hot path
// — step, register/memory peeks, trace pulls — without JSON or
// per-request connection setup; see internal/wire and cmd/osmwire.
//
// Usage:
//
//	osmserve -addr :8080
//	osmserve -addr :8080 -wire-addr :8081 -max-sessions 128
//
// A quick session from the shell:
//
//	curl -s localhost:8080/v1/sessions -d '{"target":"strongarm","workload":"gsm/dec","n":60}'
//	curl -s localhost:8080/v1/sessions/s-000001/step -d '{"cycles":100000}'
//	osmwire -addr localhost:8081 step s-000001 100000
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM drain gracefully: new sessions are refused, the wire
// listener closes and in-flight frames flush, HTTP requests finish
// (all bounded by -drain-timeout), remaining sessions are evicted,
// then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gate"
	"repro/internal/server"
)

// hostport normalizes a listen address into something another process
// can dial: a bare or wildcard host becomes loopback. Unix-socket
// addresses ("unix:/path") pass through — they are same-host by
// nature.
func hostport(addr string) string {
	if strings.HasPrefix(addr, "unix:") {
		return addr
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (HTTP control plane)")
		wireAddr     = flag.String("wire-addr", "", "listen address for the binary wire protocol (empty disables)")
		maxSessions  = flag.Int("max-sessions", 64, "admission control: maximum resident sessions")
		idleTimeout  = flag.Duration("idle-timeout", 5*time.Minute, "evict sessions unused for this long")
		maxStep      = flag.Uint64("max-step-cycles", 50_000_000, "cap on cycles per step request")
		stepDeadline = flag.Duration("step-deadline", 10*time.Second, "default per-step-request deadline")
		traceLimit   = flag.Int("trace-limit", 4096, "default per-session trace retention (events)")
		workers      = flag.Int("step-workers", 0, "step scheduler worker pool size (0 = GOMAXPROCS)")
		queuedSteps  = flag.Int("max-queued-steps", 0, "step run-queue bound; beyond it requests get backpressure (0 = default)")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "shutdown: how long in-flight requests may finish")
		quiet        = flag.Bool("quiet", false, "suppress per-event log lines")
		parkDir      = flag.String("park-dir", "", "park idle-evicted sessions as snapshot blobs here (empty discards them)")
		register     = flag.String("register", "", "osmgate base URL to register with (empty = standalone)")
		workerID     = flag.String("worker-id", "", "worker id for gateway registration (default: the advertised address)")
		advertise    = flag.String("advertise", "", "HTTP base URL the gateway should reach this worker at (default derived from -addr)")
		wireAdvert   = flag.String("wire-advertise", "", "wire address the gateway should reach this worker at (default derived from -wire-addr)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "osmserve: ", log.LstdFlags)
	if *parkDir != "" {
		if err := os.MkdirAll(*parkDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "osmserve:", err)
			os.Exit(1)
		}
	}
	cfg := server.Config{
		MaxSessions:         *maxSessions,
		IdleTimeout:         *idleTimeout,
		MaxStepCycles:       *maxStep,
		DefaultStepDeadline: *stepDeadline,
		TraceLimit:          *traceLimit,
		Workers:             *workers,
		MaxQueuedSteps:      *queuedSteps,
		ParkDir:             *parkDir,
	}
	if !*quiet {
		cfg.Logf = logger.Printf
	}
	mgr := server.NewManager(cfg)
	mgr.Start()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mgr.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 2)
	go func() {
		logger.Printf("listening on %s (max %d sessions, idle timeout %v)", *addr, *maxSessions, *idleTimeout)
		errCh <- srv.ListenAndServe()
	}()

	var wsrv *server.WireServer
	if *wireAddr != "" {
		// "unix:/path/to.sock" selects a unix-domain socket — the
		// lowest-latency transport for same-host clients; anything
		// else is a TCP host:port.
		network, laddr := "tcp", *wireAddr
		if path, ok := strings.CutPrefix(*wireAddr, "unix:"); ok {
			network, laddr = "unix", path
			os.Remove(path) // a stale socket from a previous run blocks bind
		}
		ln, err := net.Listen(network, laddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "osmserve:", err)
			os.Exit(1)
		}
		wsrv = server.NewWireServer(mgr)
		go func() {
			logger.Printf("wire protocol on %s", ln.Addr())
			if err := wsrv.Serve(ln); err != nil {
				errCh <- fmt.Errorf("wire listener: %w", err)
			}
		}()
	}

	// Gateway registration: announce this worker to the fabric and keep
	// retrying until it lands (the gateway may start after the workers).
	id := *workerID
	if *register != "" {
		gw := strings.TrimSuffix(*register, "/")
		adv := *advertise
		if adv == "" {
			adv = "http://" + hostport(*addr)
		}
		wadv := *wireAdvert
		if wadv == "" && *wireAddr != "" {
			wadv = hostport(*wireAddr)
		}
		if id == "" {
			id = adv
		}
		go func() {
			for {
				err := gate.RegisterWorker(gw, id, adv, wadv, 5*time.Second)
				if err == nil {
					logger.Printf("registered with gateway %s as %s (%s, wire %q)", gw, id, adv, wadv)
					return
				}
				logger.Printf("gateway registration: %v (retrying)", err)
				time.Sleep(2 * time.Second)
			}
		}()
	}

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Printf("%v: draining (%v for in-flight requests)", sig, *drainTimeout)
		mgr.Drain() // refuse new sessions while in-flight work completes
		if *register != "" {
			// Hand the resident sessions to the rest of the fleet before
			// tearing anything down: the gateway migrates each one out
			// (snapshot here, restore elsewhere) and returns when no
			// session depends on this worker anymore. Our HTTP plane is
			// still fully up — drain only refuses new sessions — so the
			// snapshot/delete legs land normally.
			gw := strings.TrimSuffix(*register, "/")
			if err := gate.NotifyDrain(gw, id, *drainTimeout); err != nil {
				logger.Printf("gateway migrate-out: %v (continuing shutdown)", err)
			} else {
				logger.Printf("gateway migrated sessions out")
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		var derr error
		if wsrv != nil {
			// Close the wire listener first: readers stop, in-flight
			// frames complete and flush before their connections close.
			derr = wsrv.Shutdown(ctx)
		}
		if err := srv.Shutdown(ctx); err != nil && derr == nil {
			derr = err
		}
		cancel()
		mgr.Close()
		if derr != nil {
			logger.Printf("shutdown: %v", derr)
			os.Exit(1)
		}
		logger.Printf("drained cleanly")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "osmserve:", err)
			os.Exit(1)
		}
	}
}
