// Osmserve is the simulation service: it hosts concurrent interactive
// simulation sessions — each a cycle-accurate OSM model pinned behind
// its own mutex — over an HTTP/JSON API with admission control,
// idle-session eviction and live observability.
//
// Usage:
//
//	osmserve -addr :8080
//	osmserve -addr :8080 -max-sessions 128 -idle-timeout 10m
//
// A quick session from the shell:
//
//	curl -s localhost:8080/v1/sessions -d '{"target":"strongarm","workload":"gsm/dec","n":60}'
//	curl -s localhost:8080/v1/sessions/s-000001/step -d '{"cycles":100000}'
//	curl -s localhost:8080/v1/sessions/s-000001/registers
//	curl -s -o state.snap localhost:8080/v1/sessions/s-000001/snapshot
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM drain gracefully: new sessions are refused, in-flight
// requests finish (bounded by -drain-timeout), remaining sessions are
// evicted, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		maxSessions  = flag.Int("max-sessions", 64, "admission control: maximum resident sessions")
		idleTimeout  = flag.Duration("idle-timeout", 5*time.Minute, "evict sessions unused for this long")
		maxStep      = flag.Uint64("max-step-cycles", 50_000_000, "cap on cycles per step request")
		stepDeadline = flag.Duration("step-deadline", 10*time.Second, "default per-step-request deadline")
		traceLimit   = flag.Int("trace-limit", 4096, "default per-session trace retention (events)")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "shutdown: how long in-flight requests may finish")
		quiet        = flag.Bool("quiet", false, "suppress per-event log lines")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "osmserve: ", log.LstdFlags)
	cfg := server.Config{
		MaxSessions:         *maxSessions,
		IdleTimeout:         *idleTimeout,
		MaxStepCycles:       *maxStep,
		DefaultStepDeadline: *stepDeadline,
		TraceLimit:          *traceLimit,
	}
	if !*quiet {
		cfg.Logf = logger.Printf
	}
	mgr := server.NewManager(cfg)
	mgr.Start()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mgr.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (max %d sessions, idle timeout %v)", *addr, *maxSessions, *idleTimeout)
		errCh <- srv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Printf("%v: draining (%v for in-flight requests)", sig, *drainTimeout)
		mgr.Drain() // refuse new sessions while in-flight work completes
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		err := srv.Shutdown(ctx)
		cancel()
		mgr.Close()
		if err != nil {
			logger.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		logger.Printf("drained cleanly")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "osmserve:", err)
			os.Exit(1)
		}
	}
}
