// Command osmgen emits the generated-engine edge functions of a
// built-in case study: it builds the model exactly as the simulator
// does, lowers it through Director.Compile, and renders one
// monomorphic Go function per edge (internal/osm/gen) into the
// simulator's package. The go:generate directives in
// internal/sim/strongarm and internal/sim/ppc750 drive it; the
// emitted files are committed, and CI regenerates them to catch
// drift between the model and its generated form.
//
// Usage:
//
//	osmgen -target strongarm|ppc750 [-out edges_gen.go]
//
// With -out - the file is written to standard output.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/osm"
	"repro/internal/osm/gen"
	"repro/internal/sim/ppc750"
	"repro/internal/sim/strongarm"
	"repro/internal/workload"
)

func main() {
	target := flag.String("target", "", "case study to generate for: strongarm | ppc750")
	out := flag.String("out", "edges_gen.go", "output file (relative to the working directory; - for stdout)")
	flag.Parse()

	src, err := generate(*target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "osmgen: %v\n", err)
		os.Exit(1)
	}
	if *out == "-" {
		os.Stdout.Write(src)
		return
	}
	if err := os.WriteFile(*out, src, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "osmgen: %v\n", err)
		os.Exit(1)
	}
}

// generate builds the target's model and renders its generated edge
// functions. The program the simulator is constructed with is
// irrelevant: the lowered guard program depends only on the model's
// structure, never on the workload.
func generate(target string) ([]byte, error) {
	w := workload.ByName("gsm/dec")
	var prog *osm.GuardProgram
	var spec gen.Spec
	switch target {
	case "strongarm":
		p, err := w.ARMProgram(1)
		if err != nil {
			return nil, err
		}
		s, err := strongarm.New(p, strongarm.Config{})
		if err != nil {
			return nil, err
		}
		if prog, spec, err = s.GenModel(); err != nil {
			return nil, err
		}
	case "ppc750":
		p, err := w.PPCProgram(1)
		if err != nil {
			return nil, err
		}
		s, err := ppc750.New(p, ppc750.Config{})
		if err != nil {
			return nil, err
		}
		if prog, spec, err = s.GenModel(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown -target %q (want strongarm or ppc750)", target)
	}
	return gen.File(prog, spec)
}
