// Osmgate is the session fabric gateway: it consistent-hashes
// sessions over a fleet of registered osmserve workers, proxies both
// the HTTP/JSON control plane and the binary wire protocol, and
// migrates sessions live — for worker drains, manual rebalancing, and
// resurrection of parked idle-evicted sessions. Clients speak to it
// exactly as they would to one osmserve; the fleet behind it is
// invisible except for the X-Osmgate-Worker response header.
//
// Usage:
//
//	osmgate -addr :9090 -wire-addr :9091 -park-dir /var/lib/osm/park
//	osmserve -addr :8080 -wire-addr :8081 -register http://localhost:9090 \
//	         -park-dir /var/lib/osm/park
//	osmserve -addr :8180 -wire-addr :8181 -register http://localhost:9090 \
//	         -park-dir /var/lib/osm/park
//
//	curl -s localhost:9090/v1/sessions -d '{"target":"strongarm","workload":"gsm/dec","n":60}'
//	curl -s localhost:9090/v1/sessions/<id>/step -d '{"cycles":100000}'
//	osmwire -via localhost:9091 step <id> 100000
//	curl -s localhost:9090/v1/workers
//	curl -s localhost:9090/v1/admin/migrate -d '{"session":"<id>"}'
//
// Workers self-register (osmserve -register) and are health-probed;
// a worker's SIGTERM asks the gateway to migrate its sessions out
// before it exits, so rolling a fleet loses no running session.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gate"
)

func main() {
	var (
		addr           = flag.String("addr", ":9090", "listen address (HTTP control plane)")
		wireAddr       = flag.String("wire-addr", "", "listen address for the binary wire protocol (empty disables)")
		parkDir        = flag.String("park-dir", "", "directory of parked session snapshots to resurrect on touch (share it with the workers)")
		replicas       = flag.Int("replicas", 64, "virtual nodes per worker on the hash ring")
		healthInterval = flag.Duration("health-interval", time.Second, "worker health probe cadence")
		healthTimeout  = flag.Duration("health-timeout", 2*time.Second, "per-probe timeout")
		maxFails       = flag.Int("max-fails", 3, "consecutive probe failures before a worker leaves the ring")
		proxyTimeout   = flag.Duration("proxy-timeout", 60*time.Second, "per-forwarded-request timeout")
		drainTimeout   = flag.Duration("drain-timeout", 15*time.Second, "shutdown: how long in-flight requests may finish")
		quiet          = flag.Bool("quiet", false, "suppress per-event log lines")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "osmgate: ", log.LstdFlags)
	if *parkDir != "" {
		if err := os.MkdirAll(*parkDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "osmgate:", err)
			os.Exit(1)
		}
	}
	cfg := gate.Config{
		Replicas:       *replicas,
		HealthInterval: *healthInterval,
		HealthTimeout:  *healthTimeout,
		MaxFails:       *maxFails,
		ProxyTimeout:   *proxyTimeout,
		ParkDir:        *parkDir,
	}
	if !*quiet {
		cfg.Logf = logger.Printf
	}
	g := gate.New(cfg)
	g.Start()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           g.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 2)
	go func() {
		logger.Printf("listening on %s (ring replicas %d, park dir %q)", *addr, *replicas, *parkDir)
		errCh <- srv.ListenAndServe()
	}()

	var wp *gate.WireProxy
	if *wireAddr != "" {
		network, laddr := "tcp", *wireAddr
		if path, ok := strings.CutPrefix(*wireAddr, "unix:"); ok {
			network, laddr = "unix", path
			os.Remove(path)
		}
		ln, err := net.Listen(network, laddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "osmgate:", err)
			os.Exit(1)
		}
		wp = gate.NewWireProxy(g)
		go func() {
			logger.Printf("wire protocol on %s", ln.Addr())
			if err := wp.Serve(ln); err != nil {
				errCh <- fmt.Errorf("wire listener: %w", err)
			}
		}()
	}

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Printf("%v: draining (%v for in-flight requests)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		var derr error
		if wp != nil {
			derr = wp.Shutdown(ctx)
		}
		if err := srv.Shutdown(ctx); err != nil && derr == nil {
			derr = err
		}
		cancel()
		g.Close()
		if derr != nil {
			logger.Printf("shutdown: %v", derr)
			os.Exit(1)
		}
		logger.Printf("drained cleanly")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "osmgate:", err)
			os.Exit(1)
		}
	}
}
