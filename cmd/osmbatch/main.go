// Osmbatch runs a set of simulation jobs across a worker pool with
// periodic checkpoints, per-job deadlines and panic isolation, and
// writes a JSON results manifest. A killed or crashed batch is
// restarted with the same -checkpoint-dir and resumes each unfinished
// job from its last checkpoint.
//
// Usage:
//
//	osmbatch -mix -workers 4 -out results.json
//	osmbatch -jobs jobs.json -checkpoint-dir ckpt -checkpoint-every 100000
//	osmbatch -mix -n 60 -scheduler compiled -deadline 2m
//
// The -jobs file is a JSON array of job objects:
//
//	[{"arch": "arm", "workload": "gsm/dec", "n": 500},
//	 {"arch": "ppc", "workload": "mpeg2/enc"}]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/batch"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size")
		jobsFile  = flag.String("jobs", "", "JSON file with the job array")
		mix       = flag.Bool("mix", false, "run the standard mixed ARM+PPC set over every workload")
		n         = flag.Int("n", 0, "iteration count for -mix jobs (0 = per-workload default)")
		scheduler = flag.String("scheduler", "event", "execution engine: event, scan, compiled or generated")
		ckptDir   = flag.String("checkpoint-dir", "", "directory for per-job checkpoint files (enables resume)")
		ckptEvery = flag.Uint64("checkpoint-every", 0, "cycles between checkpoints (0 = none)")
		deadline  = flag.Duration("deadline", 0, "per-job wall-clock deadline (0 = none)")
		maxCycles = flag.Uint64("max-cycles", 0, "per-job cycle bound (0 = 20M)")
		out       = flag.String("out", "", "write the JSON manifest to this file (default stdout)")
		quiet     = flag.Bool("quiet", false, "suppress per-job progress lines")
		injectAt  = flag.Uint64("inject-panic", 0, "fault injection: panic the first job at this cycle")
		check     = flag.Bool("check", false, "verify OSM invariants every control step on every job")
	)
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "osmbatch:", err)
		return 1
	}

	var jobs []batch.Job
	switch {
	case *jobsFile != "" && *mix:
		return fail(fmt.Errorf("-jobs and -mix are mutually exclusive"))
	case *jobsFile != "":
		data, err := os.ReadFile(*jobsFile)
		if err != nil {
			return fail(err)
		}
		if err := json.Unmarshal(data, &jobs); err != nil {
			return fail(fmt.Errorf("%s: %w", *jobsFile, err))
		}
	case *mix:
		jobs = batch.MixJobs(*n)
	default:
		flag.Usage()
		return 2
	}
	if len(jobs) == 0 {
		return fail(fmt.Errorf("empty job set"))
	}
	switch *scheduler {
	case "event", "scan", "compiled", "generated":
	default:
		return fail(fmt.Errorf("unknown scheduler %q (want event, scan, compiled or generated)", *scheduler))
	}
	for i := range jobs {
		jobs[i].Scan = *scheduler == "scan"
		jobs[i].Engine = *scheduler
		jobs[i].Check = jobs[i].Check || *check
		if *maxCycles > 0 {
			jobs[i].MaxCycles = *maxCycles
		}
	}
	if *injectAt > 0 {
		jobs[0].PanicAt = *injectAt
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return fail(err)
		}
	}
	if *ckptEvery > 0 && *ckptDir == "" {
		return fail(fmt.Errorf("-checkpoint-every requires -checkpoint-dir"))
	}

	r := &batch.Runner{
		Workers:         *workers,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		Deadline:        *deadline,
	}
	if !*quiet {
		r.Log = os.Stderr
	}

	// A first SIGINT/SIGTERM aborts the batch gracefully: in-progress
	// jobs flush a final checkpoint and the partial manifest is still
	// written, so rerunning with the same -checkpoint-dir resumes. A
	// second signal kills the process immediately.
	interrupt := make(chan struct{})
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "osmbatch: interrupted; flushing checkpoints and writing manifest (interrupt again to kill)")
		close(interrupt)
		<-sigCh
		os.Exit(130)
	}()
	r.Interrupt = interrupt

	start := time.Now()
	m := r.Run(jobs)
	if !*quiet {
		fmt.Fprintf(os.Stderr, "osmbatch: %d jobs, %d failed, %v elapsed\n",
			len(m.Results), m.Failed(), time.Since(start).Round(time.Millisecond))
	}

	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fail(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		return fail(err)
	}
	select {
	case <-interrupt:
		return 130
	default:
	}
	if m.Failed() > 0 {
		return 1
	}
	return 0
}
