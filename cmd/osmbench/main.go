// Osmbench regenerates the tables and figures of the paper's
// evaluation (Section 5). See EXPERIMENTS.md for the paper-versus-
// measured record.
//
// Usage:
//
//	osmbench -all
//	osmbench -table 1        # StrongARM validation (paper Table 1)
//	osmbench -table 2        # source code line counts (paper Table 2)
//	osmbench -speed arm      # OSM vs SimpleScalar-style speed (§5.1)
//	osmbench -speed ppc      # OSM vs SystemC-style speed (§5.2)
//	osmbench -validate       # PPC-750 timing validation (§5.2)
//	osmbench -fig2           # reservation-station paths (Figure 2)
//	osmbench -engines        # execution-engine comparison (DESIGN.md §12-13)
//	osmbench -json           # engine matrix as JSON (per-workload cycles/sec)
//	osmbench -speed ppc -engine compiled   # one engine for -speed runs
//	osmbench -scale 4        # iteration-count multiplier
//
// Profiling the simulator hot path:
//
//	osmbench -speed ppc -cpuprofile ppc.prof
//	go tool pprof ppc.prof
//	osmbench -speed arm -memprofile arm.mprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/experiments"
	"repro/internal/osm"
)

func main() {
	os.Exit(run())
}

// run holds the program body so profile-stopping defers execute
// before the process exits.
func run() int {
	var (
		table      = flag.Int("table", 0, "regenerate paper table 1 or 2")
		speed      = flag.String("speed", "", "speed comparison: arm or ppc")
		validate   = flag.Bool("validate", false, "PPC-750 timing validation")
		fig2       = flag.Bool("fig2", false, "reservation-station (Figure 2) comparison")
		engineName = flag.String("engine", "", "execution engine for the -speed OSM models: event | scan | compiled | generated")
		engines    = flag.Bool("engines", false, "compare execution engines (generated, compiled, event, scan) on both OSM case studies")
		jsonOut    = flag.Bool("json", false, "emit the per-workload engine matrix as JSON on stdout")
		all        = flag.Bool("all", false, "run every experiment")
		scale      = flag.Int("scale", experiments.DefaultScale, "workload iteration multiplier")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	code := 0
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "osmbench:", err)
		code = 1
	}

	eng, err := osm.ParseEngine(*engineName)
	if err != nil {
		fail(err)
		return code
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
			return code
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
			return code
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fail(err)
				return
			}
			defer f.Close()
			runtime.GC() // flush recently freed objects out of the profile
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fail(err)
			}
		}()
	}

	ran := false
	if *all || *table == 1 {
		ran = true
		rows, err := experiments.Table1(*scale)
		if err != nil {
			fail(err)
			return code
		}
		experiments.Table1Table(rows).Fprint(os.Stdout)
		fmt.Println()
	}
	if *all || *table == 2 {
		ran = true
		rows, baselines, err := experiments.Table2()
		if err != nil {
			fail(err)
			return code
		}
		experiments.Table2Table(rows, baselines).Fprint(os.Stdout)
		fmt.Println()
	}
	if *all || *speed == "arm" {
		ran = true
		rs, err := experiments.SpeedARM(*scale, eng)
		if err != nil {
			fail(err)
			return code
		}
		experiments.SpeedTable("Simulation speed: StrongARM (paper §5.1: OSM 650k vs SimpleScalar 550k cyc/s)", rs).Fprint(os.Stdout)
		fmt.Println()
	}
	if *all || *speed == "ppc" {
		ran = true
		rs, err := experiments.SpeedPPC(*scale, eng)
		if err != nil {
			fail(err)
			return code
		}
		experiments.SpeedTable("Simulation speed: PPC-750 (paper §5.2: OSM at 4x the SystemC model)", rs).Fprint(os.Stdout)
		fmt.Println()
	}
	if *all || *validate {
		ran = true
		rows, err := experiments.ValidatePPC(*scale)
		if err != nil {
			fail(err)
			return code
		}
		experiments.ValidateTable(rows).Fprint(os.Stdout)
		fmt.Println()
	}
	if *all || *engines {
		ran = true
		arm, ppc, err := experiments.SpeedEngines(*scale)
		if err != nil {
			fail(err)
			return code
		}
		experiments.EngineSpeedTable("Execution engines: StrongARM (speedup vs scan and event references)", arm).Fprint(os.Stdout)
		fmt.Println()
		experiments.EngineSpeedTable("Execution engines: PPC-750 (speedup vs scan and event references)", ppc).Fprint(os.Stdout)
		fmt.Println()
	}
	if *jsonOut {
		ran = true
		samples, err := experiments.EngineMatrix(*scale)
		if err != nil {
			fail(err)
			return code
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(samples); err != nil {
			fail(err)
			return code
		}
	}
	if *all || *fig2 {
		ran = true
		rows, err := experiments.Fig2(*scale)
		if err != nil {
			fail(err)
			return code
		}
		experiments.Fig2Table(rows).Fprint(os.Stdout)
		fmt.Println()
	}
	if !ran {
		flag.Usage()
		return 2
	}
	return code
}
