// Osmwire is the shell client for osmserve's binary wire protocol
// (internal/wire): the hot-path twin of the curl-able HTTP API, used
// by the CI smoke job and for quick manual pokes. Sessions are still
// created and managed over HTTP; osmwire drives an existing session.
//
// Usage:
//
//	osmwire -addr localhost:8081 ping
//	osmwire -addr localhost:8081 step s-000001 100000
//	osmwire -addr localhost:8081 regs s-000001
//	osmwire -addr localhost:8081 mem s-000001 0x8000 64
//	osmwire -addr localhost:8081 trace s-000001 [since]
//
// Output is one line per fact, stable for grepping from scripts.
// Exit status 0 on success, 1 on any transport or NACK error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/wire"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: osmwire [-addr host:port] [-via host:port] [-timeout d] <command> [args]

commands:
  ping                    handshake; print the server banner
  step <session> <cycles> [deadline-ms]
  regs <session>
  mem <session> <addr> <len>
  trace <session> [since]

-via routes through an osmgate gateway's wire listener instead of a
worker directly; the gateway resolves the session to its worker.
`)
	os.Exit(2)
}

func main() {
	var (
		addr    = flag.String("addr", "localhost:8081", "wire listener address (a worker)")
		via     = flag.String("via", "", "osmgate wire listener address; overrides -addr")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request timeout")
	)
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	dial := *addr
	if *via != "" {
		dial = *via
	}
	cl, err := wire.Dial(dial)
	if err != nil {
		fatal(err)
	}
	defer cl.Close()
	cl.Timeout = *timeout

	switch cmd, rest := args[0], args[1:]; cmd {
	case "ping":
		resp, err := cl.Hello("osmwire")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("server: %s\nmax-payload: %d\n", resp.Server, resp.MaxPayload)

	case "step":
		if len(rest) < 2 || len(rest) > 3 {
			usage()
		}
		cycles := parseUint(rest[1], "cycles")
		var deadline time.Duration
		if len(rest) == 3 {
			deadline = time.Duration(parseUint(rest[2], "deadline-ms")) * time.Millisecond
		}
		resp, err := cl.Step(rest[0], cycles, deadline)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("stepped: %d\ncycle: %d\nstate: %s\ndone: %v\n", resp.Stepped, resp.Cycle, resp.State, resp.Done)
		if resp.DeadlineExceeded {
			fmt.Println("deadline-exceeded: true")
		}
		if resp.HasResult {
			fmt.Printf("instructions: %d\n", resp.Instrs)
			for i, v := range resp.Reported {
				fmt.Printf("reported[%d]: %#x\n", i, v)
			}
		}

	case "regs":
		if len(rest) != 1 {
			usage()
		}
		resp, err := cl.Registers(rest[0])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cycle: %d\n", resp.Cycle)
		for _, rg := range resp.Regs {
			fmt.Printf("%s: %#x\n", rg.Name, rg.Value)
		}

	case "mem":
		if len(rest) != 3 {
			usage()
		}
		resp, err := cl.ReadMem(rest[0], uint32(parseUint(rest[1], "addr")), uint32(parseUint(rest[2], "len")))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("addr: %#x\nlen: %d\ndata: %x\n", resp.Addr, len(resp.Data), resp.Data)

	case "trace":
		if len(rest) < 1 || len(rest) > 2 {
			usage()
		}
		var since uint64
		if len(rest) == 2 {
			since = parseUint(rest[1], "since")
		}
		resp, err := cl.Trace(rest[0], since)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("total: %d\nchecksum: %016x\n", resp.Total, resp.Checksum)
		for _, e := range resp.Events {
			fmt.Printf("%d %s.%s %s->%s\n", e.Step, e.Machine, e.Edge, e.From, e.To)
		}

	default:
		usage()
	}
}

func parseUint(s, what string) uint64 {
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		fatal(fmt.Errorf("invalid %s %q: %v", what, s, err))
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "osmwire:", err)
	os.Exit(1)
}
