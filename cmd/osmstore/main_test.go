package main

import (
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/osm"
	"repro/internal/runner"
	"repro/internal/server"
)

// parkOne drives a session partway and waits for the janitor to park
// it, returning the session id and the cycle it parked at.
func parkOne(t *testing.T, dir string, spec runner.Spec, steps uint64) (string, uint64) {
	t.Helper()
	m := server.NewManager(server.Config{IdleTimeout: 30 * time.Millisecond, ParkDir: dir})
	m.Start()
	defer m.Close()
	s, err := m.Create(spec, 128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(s, steps, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	id := s.ID
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(server.ParkMetaPath(dir, id)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("janitor never parked the session")
		}
		time.Sleep(10 * time.Millisecond)
	}
	meta, _, err := server.LoadPark(dir, id)
	if err != nil {
		t.Fatal(err)
	}
	return id, meta.Cycle
}

// refAt runs the spec from scratch with a recorder attached and
// returns the state at the target cycle.
func refAt(t *testing.T, spec runner.Spec, cycle uint64) ([]runner.Reg, uint64, string) {
	t.Helper()
	inst, err := runner.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	rec := osm.NewRecorder()
	rec.Limit = 128
	inst.Director().Tracer = rec
	for inst.Cycle() < cycle && !inst.Done() {
		if err := inst.StepCycle(); err != nil {
			t.Fatal(err)
		}
	}
	return inst.Registers(), rec.Total(), fmt.Sprintf("%016x", rec.Checksum())
}

// The time-travel query over a parked session must be
// indistinguishable from having run the model straight to the target
// cycle: same registers, same whole-run trace total and checksum
// (the park's trace state is carried into the replay).
func TestAtReplaysParkedSessionIdentically(t *testing.T) {
	dir := t.TempDir()
	spec := runner.Spec{Target: "strongarm", Workload: "gsm/dec", N: 60}
	id, parked := parkOne(t, dir, spec, 2500)
	target := parked + 500

	res, err := queryAt(dir, id, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoint != parked {
		t.Fatalf("replay started from cycle %d, parked at %d", res.Checkpoint, parked)
	}
	if res.Cycle != target || res.Kind != "session" {
		t.Fatalf("at = %+v, want cycle %d", res, target)
	}
	regs, total, sum := refAt(t, spec, target)
	if !reflect.DeepEqual(res.Registers, regs) {
		t.Fatalf("registers diverge from the straight run:\n  at:  %v\n  ref: %v", res.Registers, regs)
	}
	if res.TraceTotal != total || res.TraceChecksum != sum {
		t.Fatalf("trace (%d, %s) diverges from straight run (%d, %s)",
			res.TraceTotal, res.TraceChecksum, total, sum)
	}
}

// A cycle between two checkpoints of a batch job resolves to the
// nearest earlier checkpoint plus deterministic replay; the
// architectural state matches a straight run.
func TestAtReplaysBatchCheckpoint(t *testing.T) {
	dir := t.TempDir()
	job := batch.Job{Name: "q", Arch: "arm", Workload: "gsm/dec", N: 40, PanicAt: 800}
	r := &batch.Runner{Workers: 1, CheckpointDir: dir, CheckpointEvery: 200}
	if got := r.Run([]batch.Job{job}).Results[0]; got.Status != batch.StatusPanic {
		t.Fatalf("setup run: status %q (%s)", got.Status, got.Error)
	}

	const target = 750
	res, err := queryAt(dir, "q", target)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "ckpt" || res.Cycle != target {
		t.Fatalf("at = %+v", res)
	}
	if res.Checkpoint >= target || res.Checkpoint == 0 {
		t.Fatalf("checkpoint cycle %d not strictly before target %d", res.Checkpoint, target)
	}
	regs, _, _ := refAt(t, runner.Spec{Target: "strongarm", Workload: "gsm/dec", N: 40}, target)
	if !reflect.DeepEqual(res.Registers, regs) {
		t.Fatalf("registers diverge from the straight run:\n  at:  %v\n  ref: %v", res.Registers, regs)
	}
}

// The CLI surface end to end: ls shows the run, stat reports totals,
// gc after consuming the park sweeps everything.
func TestCLISmoke(t *testing.T) {
	dir := t.TempDir()
	id, parked := parkOne(t, dir, runner.Spec{Target: "ppc750", Workload: "gsm/dec", N: 40}, 1500)

	var out strings.Builder
	if code := run([]string{"-dir", dir, "ls"}, &out); code != 0 {
		t.Fatalf("ls exited %d", code)
	}
	if !strings.Contains(out.String(), id) {
		t.Fatalf("ls does not list %s:\n%s", id, out.String())
	}

	out.Reset()
	if code := run([]string{"-dir", dir, "stat"}, &out); code != 0 {
		t.Fatalf("stat exited %d", code)
	}
	if !strings.Contains(out.String(), "runs:           1") {
		t.Fatalf("stat output:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"-dir", dir, "at", "-run", id, "-cycle", fmt.Sprint(parked), "-json"}, &out); code != 0 {
		t.Fatalf("at exited %d", code)
	}
	if !strings.Contains(out.String(), `"kind": "session"`) {
		t.Fatalf("at output:\n%s", out.String())
	}

	// Consume the park, then a zero-grace sweep reclaims every chunk.
	if err := server.ConsumePark(dir, id); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-dir", dir, "gc", "-grace", "0s"}, &out); code != 0 {
		t.Fatalf("gc exited %d", code)
	}
	if strings.Contains(out.String(), "swept 0 chunks") {
		t.Fatalf("gc swept nothing after consume:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-dir", dir, "stat"}, &out); code != 0 {
		t.Fatalf("stat exited %d", code)
	}
	if !strings.Contains(out.String(), "chunks:         0") {
		t.Fatalf("chunks remain after gc:\n%s", out.String())
	}
	if code := run([]string{"-dir", dir, "bogus"}, &out); code == 0 {
		t.Fatal("unknown command exited 0")
	}
}
