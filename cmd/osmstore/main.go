// Osmstore inspects and maintains a chunked artifact store — a park
// directory written by osmserve workers or a checkpoint directory
// written by osmbatch. It lists the stored runs, reports dedup and
// compression totals, reclaims unreferenced chunks, and answers the
// time-travel query "what was cycle N of run J": the nearest indexed
// checkpoint at or before N is reassembled and deterministically
// replayed forward to N.
//
// Usage:
//
//	osmstore -dir park ls
//	osmstore -dir park stat
//	osmstore -dir park gc -grace 1m
//	osmstore -dir park at -run s-000001 -cycle 4000
//	osmstore -dir ckpt at -run arm-gsm_dec-n400 -cycle 12000 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/batch"
	"repro/internal/osm"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("osmstore", flag.ContinueOnError)
	dir := fs.String("dir", "", "store root directory (a park or checkpoint directory)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: osmstore -dir <root> <ls|stat|gc|at> [args]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dir == "" || fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	cmd, rest := fs.Arg(0), fs.Args()[1:]
	var err error
	switch cmd {
	case "ls":
		err = cmdLs(*dir, stdout)
	case "stat":
		err = cmdStat(*dir, stdout)
	case "gc":
		err = cmdGC(*dir, rest, stdout)
	case "at":
		err = cmdAt(*dir, rest, stdout)
	default:
		err = fmt.Errorf("unknown command %q (want ls, stat, gc or at)", cmd)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "osmstore:", err)
		return 1
	}
	return 0
}

// cmdLs lists every stored run with its checkpoint count, cycle range
// and logical size.
func cmdLs(dir string, stdout io.Writer) error {
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	runs, err := st.Runs()
	if err != nil {
		return err
	}
	sort.Strings(runs)
	tw := tabwriter.NewWriter(stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "RUN\tENTRIES\tCYCLES\tBYTES")
	for _, name := range runs {
		entries, err := st.Entries(name)
		if err != nil {
			return fmt.Errorf("run %s: %w", name, err)
		}
		var logical uint64
		for _, e := range entries {
			logical += e.Len
		}
		span := "-"
		if len(entries) > 0 {
			span = fmt.Sprintf("%d..%d", entries[0].Cycle, entries[len(entries)-1].Cycle)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\n", name, len(entries), span, logical)
	}
	return tw.Flush()
}

// cmdStat prints store-wide totals: logical bytes across every run
// entry versus deduplicated, compressed bytes on disk.
func cmdStat(dir string, stdout io.Writer) error {
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	s, err := st.Stat()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "runs:           %d\n", s.Runs)
	fmt.Fprintf(stdout, "entries:        %d\n", s.Entries)
	fmt.Fprintf(stdout, "logical bytes:  %d\n", s.LogicalBytes)
	fmt.Fprintf(stdout, "chunks:         %d\n", s.Chunks)
	fmt.Fprintf(stdout, "chunk bytes:    %d\n", s.ChunkBytes)
	if s.LogicalBytes > 0 {
		fmt.Fprintf(stdout, "stored/logical: %.1f%%\n", 100*float64(s.ChunkBytes)/float64(s.LogicalBytes))
	}
	if s.LegacyBlobs > 0 {
		fmt.Fprintf(stdout, "legacy blobs:   %d (%d bytes)\n", s.LegacyBlobs, s.LegacyBytes)
	}
	return nil
}

// cmdGC sweeps chunks and legacy blobs no run index or park metadata
// references anymore.
func cmdGC(dir string, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("osmstore gc", flag.ContinueOnError)
	grace := fs.Duration("grace", time.Minute, "spare unreferenced files younger than this")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return err
	}
	stats, err := st.GC(store.GCOptions{Grace: *grace})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "swept %d chunks (%d bytes) and %d legacy blobs; %d chunks live, %d recent files spared\n",
		stats.SweptChunks, stats.SweptBytes, stats.SweptLegacy, stats.LiveChunks, stats.KeptRecent)
	return nil
}

// atResult is the time-travel query answer.
type atResult struct {
	Run string `json:"run"`
	// Requested is the queried cycle; Checkpoint the indexed cycle the
	// replay started from; Cycle the cycle actually reached (short of
	// Requested only when the program finished first).
	Requested     uint64       `json:"requested"`
	Checkpoint    uint64       `json:"checkpoint"`
	Cycle         uint64       `json:"cycle"`
	Done          bool         `json:"done"`
	Kind          string       `json:"kind"`
	Target        string       `json:"target"`
	Registers     []runner.Reg `json:"registers"`
	TraceTotal    uint64       `json:"trace_total"`
	TraceChecksum string       `json:"trace_checksum"`
}

// cmdAt answers "cycle N of run J": reassemble the nearest stored
// checkpoint at or before N and replay deterministically to N.
func cmdAt(dir string, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("osmstore at", flag.ContinueOnError)
	runName := fs.String("run", "", "run to query: a parked session id or a batch job name")
	cycle := fs.Uint64("cycle", 0, "target cycle (0 = the latest stored checkpoint)")
	asJSON := fs.Bool("json", false, "emit the answer as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runName == "" {
		return fmt.Errorf("at: -run is required")
	}
	res, err := queryAt(dir, *runName, *cycle)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Fprintf(stdout, "run:            %s (%s, %s)\n", res.Run, res.Kind, res.Target)
	fmt.Fprintf(stdout, "checkpoint:     cycle %d\n", res.Checkpoint)
	fmt.Fprintf(stdout, "cycle:          %d (requested %d, done=%v)\n", res.Cycle, res.Requested, res.Done)
	fmt.Fprintf(stdout, "trace:          %d transitions, checksum %s\n", res.TraceTotal, res.TraceChecksum)
	for _, r := range res.Registers {
		fmt.Fprintf(stdout, "  %-5s %#x\n", r.Name, r.Value)
	}
	return nil
}

// queryAt is the library form of `osmstore at`.
func queryAt(dir, runName string, cycle uint64) (atResult, error) {
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return atResult{}, err
	}
	want := cycle
	if want == 0 {
		want = ^uint64(0)
	}
	entry, data, err := st.At(runName, want)
	if err != nil {
		return atResult{}, fmt.Errorf("run %s at cycle %d: %w", runName, cycle, err)
	}

	// The stored record tells us how to rebuild its simulator: a
	// parked osmserve session carries the target and (via the .park
	// metadata) the originating spec; a batch checkpoint carries the
	// job identity.
	var (
		kind  string
		spec  runner.Spec
		blob  []byte
		rec   = osm.NewRecorder()
		start uint64
	)
	switch {
	case server.IsSessionSnapshot(data):
		kind = "session"
		ss, err := server.DecodeSessionSnapshot(data)
		if err != nil {
			return atResult{}, err
		}
		meta, err := server.ReadParkMeta(dir, runName)
		if err != nil {
			return atResult{}, fmt.Errorf("session %s: park metadata needed to rebuild the model: %w", runName, err)
		}
		spec = meta.Spec
		rec.Limit = meta.TraceLimit
		blob = ss.Blob
		start = ss.Cycle
		if ss.Tracer != nil {
			// Carry the parked trace forward so the replayed checksum
			// covers the whole run, exactly as a resurrection would.
			if err := rec.LoadState(ss.Tracer); err != nil {
				return atResult{}, fmt.Errorf("session %s: trace state: %w", runName, err)
			}
		}
	case batch.IsCheckpoint(data):
		kind = "ckpt"
		c, err := batch.DecodeCheckpoint(data)
		if err != nil {
			return atResult{}, err
		}
		spec = runner.Spec{Workload: c.Job.Workload, N: c.Job.N, Scan: c.Job.Scan, MaxCycles: c.Job.MaxCycles}
		switch c.Job.Arch {
		case "arm":
			spec.Target = "strongarm"
		case "ppc":
			spec.Target = "ppc750"
		default:
			return atResult{}, fmt.Errorf("checkpoint for unknown arch %q", c.Job.Arch)
		}
		rec.Limit = 256
		blob = c.Blob
		start = c.Cycle
	default:
		return atResult{}, fmt.Errorf("run %s: stored record is neither a session snapshot nor a batch checkpoint", runName)
	}

	inst, err := runner.New(spec)
	if err != nil {
		return atResult{}, err
	}
	inst.Director().Tracer = rec
	if err := inst.Restore(blob); err != nil {
		return atResult{}, fmt.Errorf("run %s: restore checkpoint at cycle %d: %w", runName, entry.Cycle, err)
	}
	if got := inst.Cycle(); got != start {
		return atResult{}, fmt.Errorf("run %s: checkpoint restored at cycle %d, recorded %d", runName, got, start)
	}
	for inst.Cycle() < cycle && !inst.Done() {
		if err := inst.StepCycle(); err != nil {
			return atResult{}, fmt.Errorf("run %s: replay at cycle %d: %w", runName, inst.Cycle(), err)
		}
	}
	return atResult{
		Run:           runName,
		Requested:     cycle,
		Checkpoint:    entry.Cycle,
		Cycle:         inst.Cycle(),
		Done:          inst.Done(),
		Kind:          kind,
		Target:        spec.Target,
		Registers:     inst.Registers(),
		TraceTotal:    rec.Total(),
		TraceChecksum: fmt.Sprintf("%016x", rec.Checksum()),
	}, nil
}
