package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/runner"
)

// Ambiguous program-source combinations must be rejected with a
// single clear error naming the offenders, not silently resolved by
// precedence.
func TestBuildSpecRejectsAmbiguousSources(t *testing.T) {
	cases := []struct {
		name             string
		wl, src, image   string
		wantErrFragments []string
	}{
		{"workload+src", "gsm/dec", "prog.s", "", []string{"ambiguous", "workload", "src"}},
		{"workload+image", "gsm/dec", "", "prog.bin", []string{"ambiguous", "workload", "image"}},
		{"src+image", "", "prog.s", "prog.bin", []string{"ambiguous", "src", "image"}},
		{"all three", "gsm/dec", "prog.s", "prog.bin", []string{"ambiguous", "workload", "src", "image"}},
		{"none", "", "", "", []string{"exactly one"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := buildSpec("strongarm", tc.wl, 0, tc.src, tc.image, 0, false, "")
			if err == nil {
				t.Fatalf("buildSpec accepted %s", tc.name)
			}
			msg := err.Error()
			if strings.Contains(msg, "\n") {
				t.Fatalf("error is not a single line: %q", msg)
			}
			for _, frag := range tc.wantErrFragments {
				if !strings.Contains(msg, frag) {
					t.Fatalf("error %q does not mention %q", msg, frag)
				}
			}
		})
	}
}

func TestBuildSpecUnknownTarget(t *testing.T) {
	_, err := buildSpec("vax", "gsm/dec", 0, "", "", 0, false, "")
	if err == nil || !strings.Contains(err.Error(), "unknown target") {
		t.Fatalf("want unknown-target error, got %v", err)
	}
}

// The ambiguity check must fire before any file I/O: a nonexistent
// -src path plus a -workload reports the ambiguity, not the missing
// file.
func TestBuildSpecAmbiguityBeforeIO(t *testing.T) {
	_, err := buildSpec("strongarm", "gsm/dec", 0, "/does/not/exist.s", "", 0, false, "")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("want ambiguity error before file read, got %v", err)
	}
}

// -json output round-trips through the shared runner.Result struct.
func TestRunJSON(t *testing.T) {
	*target = "strongarm"
	*wlName = "dsp/fir"
	*iters = 20
	*jsonOut = true
	defer func() {
		*target, *wlName, *iters, *jsonOut = "strongarm", "", 0, false
	}()
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	var res runner.Result
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if res.Target != "strongarm" || res.Arch != "arm" {
		t.Fatalf("unexpected identity in %+v", res)
	}
	if res.Cycles == 0 || res.Instrs == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Extra["CPI"] == "" {
		t.Fatalf("missing CPI extra: %+v", res.Extra)
	}
}
