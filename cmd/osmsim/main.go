// Osmsim is the retargetable simulator driver: it runs a program — a
// built-in benchmark kernel, an assembly file or a program image — on
// one of the framework's processor models and reports timing
// statistics.
//
// Usage:
//
//	osmsim -target strongarm -workload gsm/enc -n 500
//	osmsim -target ppc750 -src prog.s
//	osmsim -target arm-iss -image prog.bin
//	osmsim -target ppc750 -workload mpeg2/dec -json
//
// Targets: strongarm (OSM model), sscalar (hand-coded baseline),
// ppc750 (OSM model), hwcentric (SystemC-style baseline), arm-iss and
// ppc-iss (functional simulation only). Exactly one of -workload,
// -src and -image must be given. The construction and reporting logic
// lives in internal/runner, shared with osmbatch and osmserve.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/runner"
)

var (
	target    = flag.String("target", "strongarm", "strongarm | sscalar | ppc750 | hwcentric | arm-iss | ppc-iss")
	wlName    = flag.String("workload", "", "built-in kernel (gsm/*, g721/*, mpeg2/* enc|dec; spec/crc, spec/bitcnt, dsp/fir)")
	iters     = flag.Int("n", 0, "workload iteration count (0 = kernel default)")
	srcPath   = flag.String("src", "", "assembly source file to run")
	imagePath = flag.String("image", "", "program image to run")
	maxCycles = flag.Uint64("cycles", 1_000_000_000, "cycle budget")
	perfect   = flag.Bool("perfect", false, "disable caches and TLBs")
	engine    = flag.String("engine", "", "execution engine on OSM targets: event | scan | compiled | generated")
	trace     = flag.Bool("trace", false, "print every executed instruction")
	jsonOut   = flag.Bool("json", false, "emit the result as JSON instead of text")
	check     = flag.Bool("check", false, "verify OSM invariants (token conservation, bindings, scheduling, livelock) every control step")
)

func main() {
	flag.Parse()
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "osmsim:", err)
		os.Exit(1)
	}
}

// buildSpec resolves the flag set into a runner.Spec, rejecting
// ambiguous program-source combinations up front (before any file is
// read) so the user sees one clear line instead of a silent
// preference.
func buildSpec(target, wlName string, iters int, srcPath, imagePath string, maxCycles uint64, perfect bool, engine string) (runner.Spec, error) {
	spec := runner.Spec{
		Target:    target,
		Workload:  wlName,
		N:         iters,
		MaxCycles: maxCycles,
		Perfect:   perfect,
		Engine:    engine,
	}
	// Stand-ins so Validate sees which sources were selected without
	// touching the filesystem yet.
	if srcPath != "" {
		spec.Src = srcPath
	}
	if imagePath != "" {
		spec.Image = []byte{0}
	}
	if err := spec.Validate(); err != nil {
		return runner.Spec{}, err
	}
	if srcPath != "" {
		src, err := os.ReadFile(srcPath)
		if err != nil {
			return runner.Spec{}, err
		}
		spec.Src = string(src)
	}
	if imagePath != "" {
		data, err := os.ReadFile(imagePath)
		if err != nil {
			return runner.Spec{}, err
		}
		spec.Image = data
	}
	return spec, nil
}

func run(w io.Writer) error {
	spec, err := buildSpec(*target, *wlName, *iters, *srcPath, *imagePath, *maxCycles, *perfect, *engine)
	if err != nil {
		return err
	}
	spec.Check = *check
	opts := runner.RunOptions{}
	if *trace {
		opts.Trace = os.Stdout
	}
	if spec.Target == "arm-iss" || spec.Target == "ppc-iss" {
		opts.Out = os.Stdout
	}
	start := time.Now()
	res, err := runner.Run(spec, opts)
	if err != nil {
		return err
	}
	res.WallNS = time.Since(start).Nanoseconds()
	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(&res)
	}
	res.Report(w)
	return nil
}
