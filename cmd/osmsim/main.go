// Osmsim is the retargetable simulator driver: it runs a program — a
// built-in benchmark kernel, an assembly file or a program image — on
// one of the framework's processor models and reports timing
// statistics.
//
// Usage:
//
//	osmsim -target strongarm -workload gsm/enc -n 500
//	osmsim -target ppc750 -src prog.s
//	osmsim -target arm-iss -image prog.bin
//
// Targets: strongarm (OSM model), sscalar (hand-coded baseline),
// ppc750 (OSM model), hwcentric (SystemC-style baseline), arm-iss and
// ppc-iss (functional simulation only).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/baseline/hwcentric"
	"repro/internal/baseline/sscalar"
	"repro/internal/isa/arm"
	"repro/internal/isa/ppc"
	"repro/internal/iss"
	"repro/internal/loader"
	"repro/internal/mem"
	"repro/internal/sim/ppc750"
	"repro/internal/sim/strongarm"
	"repro/internal/workload"
)

var (
	target    = flag.String("target", "strongarm", "strongarm | sscalar | ppc750 | hwcentric | arm-iss | ppc-iss")
	wlName    = flag.String("workload", "", "built-in kernel (gsm/*, g721/*, mpeg2/* enc|dec; spec/crc, spec/bitcnt, dsp/fir)")
	iters     = flag.Int("n", 0, "workload iteration count (0 = kernel default)")
	srcPath   = flag.String("src", "", "assembly source file to run")
	imagePath = flag.String("image", "", "program image to run")
	maxCycles = flag.Uint64("cycles", 1_000_000_000, "cycle budget")
	perfect   = flag.Bool("perfect", false, "disable caches and TLBs")
	trace     = flag.Bool("trace", false, "print every executed instruction")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "osmsim:", err)
		os.Exit(1)
	}
}

func isARM() bool {
	switch *target {
	case "strongarm", "sscalar", "arm-iss":
		return true
	}
	return false
}

// programs loads/assembles the requested program for the target ISA.
func programs() (*arm.Program, *ppc.Program, error) {
	switch {
	case *wlName != "":
		w := workload.ByName(*wlName)
		if w == nil {
			return nil, nil, fmt.Errorf("unknown workload %q", *wlName)
		}
		n := *iters
		if n == 0 {
			n = w.DefaultN
		}
		if isARM() {
			p, err := w.ARMProgram(n)
			return p, nil, err
		}
		p, err := w.PPCProgram(n)
		return nil, p, err
	case *srcPath != "":
		src, err := os.ReadFile(*srcPath)
		if err != nil {
			return nil, nil, err
		}
		if isARM() {
			p, err := arm.Assemble(string(src))
			return p, nil, err
		}
		p, err := ppc.Assemble(string(src))
		return nil, p, err
	case *imagePath != "":
		data, err := os.ReadFile(*imagePath)
		if err != nil {
			return nil, nil, err
		}
		im, err := loader.Unmarshal(data)
		if err != nil {
			return nil, nil, err
		}
		switch {
		case im.Arch == loader.ArchARM && isARM():
			return &arm.Program{Org: im.Org, Entry: im.Entry, Words: im.Words}, nil, nil
		case im.Arch == loader.ArchPPC && !isARM():
			return nil, &ppc.Program{Org: im.Org, Entry: im.Entry, Words: im.Words}, nil
		}
		return nil, nil, fmt.Errorf("image architecture %s does not match target %s", im.Arch, *target)
	}
	return nil, nil, fmt.Errorf("one of -workload, -src or -image is required")
}

func hier() mem.HierarchyConfig {
	if *perfect {
		return mem.HierarchyConfig{DisableCaches: true, DisableTLBs: true}
	}
	return mem.HierarchyConfig{}
}

func run() error {
	armProg, ppcProg, err := programs()
	if err != nil {
		return err
	}
	start := time.Now()
	switch *target {
	case "strongarm":
		s, err := strongarm.New(armProg, strongarm.Config{Hier: hier()})
		if err != nil {
			return err
		}
		if *trace {
			s.ISS.Trace = armTracer()
		}
		st, err := s.Run(*maxCycles)
		if err != nil {
			return err
		}
		report(start, st.Cycles, st.Instrs, s.ISS.Reported, map[string]string{
			"CPI":       fmt.Sprintf("%.3f", st.CPI()),
			"redirects": fmt.Sprint(st.Redirects),
			"icache":    cacheLine(st.ICache),
			"dcache":    cacheLine(st.DCache),
		})
	case "sscalar":
		s, err := sscalar.New(armProg, sscalar.Config{Hier: hier()})
		if err != nil {
			return err
		}
		st, err := s.Run(*maxCycles)
		if err != nil {
			return err
		}
		report(start, st.Cycles, st.Instrs, s.ISS.Reported, map[string]string{
			"CPI": fmt.Sprintf("%.3f", st.CPI()),
		})
	case "ppc750":
		s, err := ppc750.New(ppcProg, ppc750.Config{Hier: hier()})
		if err != nil {
			return err
		}
		if *trace {
			s.ISS.Trace = ppcTracer()
		}
		st, err := s.Run(*maxCycles)
		if err != nil {
			return err
		}
		report(start, st.Cycles, st.Instrs, s.ISS.Reported, map[string]string{
			"IPC":         fmt.Sprintf("%.3f", st.IPC()),
			"mispredicts": fmt.Sprint(st.Mispredicts),
			"bht":         fmt.Sprintf("%.1f%%", 100*st.BHTAccuracy),
			"icache":      cacheLine(st.ICache),
			"dcache":      cacheLine(st.DCache),
		})
	case "hwcentric":
		s, err := hwcentric.New(ppcProg, hwcentric.Config{Hier: hier()})
		if err != nil {
			return err
		}
		st, err := s.Run(*maxCycles)
		if err != nil {
			return err
		}
		report(start, st.Cycles, st.Instrs, s.ISS.Reported, map[string]string{
			"CPI":   fmt.Sprintf("%.3f", st.CPI()),
			"wires": fmt.Sprint(st.Wires),
			"evals": fmt.Sprint(st.ModuleEvals),
		})
	case "arm-iss":
		s, err := iss.NewARM(armProg, 1024)
		if err != nil {
			return err
		}
		s.Out = os.Stdout
		if *trace {
			s.Trace = armTracer()
		}
		if err := s.Run(*maxCycles); err != nil {
			return err
		}
		report(start, 0, s.Stats.Instrs, s.Reported, nil)
	case "ppc-iss":
		s, err := iss.NewPPC(ppcProg, 1024)
		if err != nil {
			return err
		}
		s.Out = os.Stdout
		if *trace {
			s.Trace = ppcTracer()
		}
		if err := s.Run(*maxCycles); err != nil {
			return err
		}
		report(start, 0, s.Stats.Instrs, s.Reported, nil)
	default:
		return fmt.Errorf("unknown target %q", *target)
	}
	return nil
}

func armTracer() func(pc uint32, ins arm.Instr) {
	return func(pc uint32, ins arm.Instr) {
		fmt.Printf("%08x:  %s\n", pc, ins.String())
	}
}

func ppcTracer() func(pc uint32, ins ppc.Instr) {
	return func(pc uint32, ins ppc.Instr) {
		fmt.Printf("%08x:  %s\n", pc, ins.String())
	}
}

func cacheLine(s mem.CacheStats) string {
	return fmt.Sprintf("%d acc, %.2f%% hit", s.Accesses, 100*s.HitRate())
}

func report(start time.Time, cycles, instrs uint64, reported []uint32, extra map[string]string) {
	wall := time.Since(start)
	fmt.Printf("instructions: %d\n", instrs)
	if cycles > 0 {
		fmt.Printf("cycles:       %d\n", cycles)
		fmt.Printf("speed:        %.0f cycles/sec\n", float64(cycles)/wall.Seconds())
	}
	fmt.Printf("wall time:    %s\n", wall.Round(time.Microsecond))
	if len(reported) > 0 {
		vals := make([]string, len(reported))
		for i, v := range reported {
			vals[i] = fmt.Sprintf("%#x", v)
		}
		fmt.Printf("reported:     %s\n", strings.Join(vals, " "))
	}
	for k, v := range extra {
		fmt.Printf("%-13s %s\n", k+":", v)
	}
}
