// Osmasm assembles ARM- or PowerPC-subset assembly into the
// framework's program-image format, and disassembles images back.
//
// Usage:
//
//	osmasm -arch arm -o prog.bin prog.s
//	osmasm -d prog.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/isa/arm"
	"repro/internal/isa/ppc"
	"repro/internal/loader"
)

func main() {
	var (
		arch = flag.String("arch", "arm", "target architecture: arm or ppc")
		out  = flag.String("o", "a.bin", "output image path")
		dis  = flag.Bool("d", false, "disassemble an image instead of assembling")
		org  = flag.Uint("org", 0, "load origin")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: osmasm [-arch arm|ppc] [-o out.bin] file.s | osmasm -d image.bin")
		os.Exit(2)
	}
	if *dis {
		if err := disassemble(flag.Arg(0)); err != nil {
			fmt.Fprintln(os.Stderr, "osmasm:", err)
			os.Exit(1)
		}
		return
	}
	if err := assemble(*arch, flag.Arg(0), *out, uint32(*org)); err != nil {
		fmt.Fprintln(os.Stderr, "osmasm:", err)
		os.Exit(1)
	}
}

func assemble(arch, inPath, outPath string, org uint32) error {
	src, err := os.ReadFile(inPath)
	if err != nil {
		return err
	}
	var im *loader.Image
	switch arch {
	case "arm":
		p, err := arm.AssembleAt(string(src), org)
		if err != nil {
			return err
		}
		im = &loader.Image{Arch: loader.ArchARM, Org: p.Org, Entry: p.Entry, Words: p.Words}
	case "ppc":
		p, err := ppc.AssembleAt(string(src), org)
		if err != nil {
			return err
		}
		im = &loader.Image{Arch: loader.ArchPPC, Org: p.Org, Entry: p.Entry, Words: p.Words}
	default:
		return fmt.Errorf("unknown architecture %q", arch)
	}
	if err := os.WriteFile(outPath, im.Marshal(), 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d words, entry %#x\n", outPath, len(im.Words), im.Entry)
	return nil
}

func disassemble(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	im, err := loader.Unmarshal(data)
	if err != nil {
		return err
	}
	fmt.Printf("; %s image, org %#x, entry %#x\n", im.Arch, im.Org, im.Entry)
	for i, w := range im.Words {
		addr := im.Org + uint32(4*i)
		var text string
		if im.Arch == loader.ArchARM {
			text = arm.Disassemble(w)
		} else {
			text = ppc.Disassemble(w)
		}
		fmt.Printf("%08x:  %08x  %s\n", addr, w, text)
	}
	return nil
}
