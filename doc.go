// Package repro is a from-scratch Go reproduction of "Flexible and
// Formal Modeling of Microprocessors with Application to Retargetable
// Simulation" (Wei Qin and Sharad Malik, DATE 2003): the operation
// state machine (OSM) computation model, its reusable token-manager
// library and deterministic director, the discrete-event hardware
// layer, two complete micro-architecture case studies (StrongARM
// SA-1100 and PowerPC 750), the baselines the paper compares against,
// an OSM-based architecture description language, and a benchmark
// harness that regenerates every table and figure of the evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-versus-measured
// results. The root-level benchmarks in bench_test.go drive the same
// experiment code as cmd/osmbench.
package repro
