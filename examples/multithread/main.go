// Multithread demonstrates Section 6 of the paper: modeling a
// multi-threaded core with the OSM formalism. Each operation state
// machine carries a thread tag; the tags participate in token
// transactions (the per-thread program counters and register files are
// separate token namespaces) and in the ranking of the machines (the
// director alternates thread priority each cycle, a round-robin
// fetch policy).
//
// The model is a 2-thread fine-grained multithreaded 3-stage core:
// one shared execution pipeline, per-thread architectural state. When
// one thread stalls on a long-latency operation, the other thread's
// operations keep the execute stage busy — the classic MT latency-
// hiding effect, visible directly in the printed utilization.
//
// Run with: go run ./examples/multithread
package main

import (
	"fmt"
	"log"

	"repro/internal/osm"
)

// mop is a toy operation: acc[thread] += imm, taking lat cycles in EX.
type mop struct {
	imm uint64
	lat uint64
}

func main() {
	const threads = 2
	// Per-thread programs: thread 0 suffers long-latency operations
	// (think cache misses), thread 1 runs short ones.
	progs := [threads][]mop{
		{{imm: 1, lat: 6}, {imm: 2, lat: 6}, {imm: 3, lat: 6}, {imm: 4, lat: 6}},
		{{imm: 10, lat: 1}, {imm: 20, lat: 1}, {imm: 30, lat: 1}, {imm: 40, lat: 1},
			{imm: 50, lat: 1}, {imm: 60, lat: 1}, {imm: 70, lat: 1}, {imm: 80, lat: 1}},
	}
	pcs := [threads]int{}
	acc := [threads]uint64{}
	retired := 0
	total := len(progs[0]) + len(progs[1])

	// Hardware layer: per-thread fetch slots (the thread contexts)
	// and one shared execute unit.
	ctx := osm.NewUnitManager("thread-ctx", threads)
	// Thread tags gate context allocation: machines may only occupy
	// their own thread's slot (the paper: "the tags are used as part
	// of the identifiers for token transactions").
	ctx.AllocGate = func(m *osm.Machine, unit osm.TokenID) bool { return int(unit) == m.Tag }
	ex := osm.NewUnitManager("EX", 1)

	I := osm.NewState("I")
	F := osm.NewState("F")
	E := osm.NewState("E")

	fetch := I.Connect("fetch", F, osm.AllocF(ctx, func(m *osm.Machine) osm.TokenID {
		return osm.TokenID(m.Tag)
	}))
	fetch.When = func(m *osm.Machine) bool { return pcs[m.Tag] < len(progs[m.Tag]) }
	fetch.Action = func(m *osm.Machine) {
		op := progs[m.Tag][pcs[m.Tag]]
		pcs[m.Tag]++
		m.Ctx = &op
	}

	issue := F.Connect("issue", E,
		osm.ReleaseF(ctx, func(m *osm.Machine) osm.TokenID { return osm.TokenID(m.Tag) }),
		osm.Alloc(ex, 0))
	issue.Action = func(m *osm.Machine) {
		op := m.Ctx.(*mop)
		acc[m.Tag] += op.imm
		if op.lat > 1 {
			ex.SetBusy(0, op.lat-1)
		}
	}

	done := E.Connect("retire", I, osm.Release(ex, 0))
	done.Action = func(m *osm.Machine) { retired++ }

	d := osm.NewDirector()
	d.AddManager(ctx, ex)
	// The thread tags contribute to the ranking: alternate which
	// thread gets priority each cycle (round-robin MT fetch).
	d.Rank = func(a, b *osm.Machine) bool {
		ai, bi := a.InInitial(), b.InInitial()
		if ai != bi {
			return bi
		}
		if !ai {
			return a.Age < b.Age
		}
		pref := int(d.StepCount()) % threads
		return (a.Tag == pref) && (b.Tag != pref)
	}
	for t := 0; t < threads; t++ {
		for k := 0; k < 2; k++ {
			m := osm.NewMachine(fmt.Sprintf("t%d.op%d", t, k), I)
			m.Tag = t
			d.AddMachine(m)
		}
	}

	busy := 0
	var cycles uint64
	for retired < total {
		if err := d.Step(); err != nil {
			log.Fatal(err)
		}
		cycles++
		if ex.Free() == 0 {
			busy++
		}
		if cycles > 1000 {
			log.Fatal("model wedged")
		}
	}

	fmt.Printf("2-thread fine-grained MT core: %d ops in %d cycles\n", total, cycles)
	fmt.Printf("thread 0 (long-latency ops): acc=%d\n", acc[0])
	fmt.Printf("thread 1 (short ops):        acc=%d\n", acc[1])
	fmt.Printf("execute-unit utilization:    %.0f%%\n", 100*float64(busy)/float64(cycles))
	soloCycles := 0
	for _, op := range progs[0] {
		soloCycles += int(op.lat) + 1
	}
	fmt.Printf("\nthread 0 alone would idle EX for long stretches (~%d cycles of\n", soloCycles)
	fmt.Println("mostly-stalled execution); thread 1's operations fill those slots.")
}
