// Ppc750 runs the paper's second case study: the dual-issue
// out-of-order PowerPC 750 OSM model. It demonstrates the Figure 2
// multi-path operation state machine — an instruction dispatches
// straight into a function unit when its operands and the unit are
// available, and waits in the unit's reservation station otherwise —
// by running each kernel with and without reservation stations.
//
// Run with: go run ./examples/ppc750
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/sim/ppc750"
	"repro/internal/stats"
	"repro/internal/workload"
)

func run(w *workload.Workload, n int, cfg ppc750.Config) ppc750.Stats {
	p, err := w.PPCProgram(n)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := ppc750.New(p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	st, err := sim.Run(1_000_000_000)
	if err != nil {
		log.Fatalf("%s: %v", w.Name, err)
	}
	if len(sim.ISS.Reported) != 1 || sim.ISS.Reported[0] != w.Ref(n) {
		log.Fatalf("%s: checksum mismatch", w.Name)
	}
	return st
}

func main() {
	table := stats.NewTable("PowerPC 750 OSM model (dual-issue out-of-order)",
		"benchmark", "instrs", "cycles", "IPC", "bht acc", "cycles w/o RS", "RS benefit")
	for _, w := range workload.All() {
		n := w.DefaultN
		withRS := run(w, n, ppc750.Config{})
		withoutRS := run(w, n, ppc750.Config{NoReservationStations: true})
		benefit := 100 * (float64(withoutRS.Cycles) - float64(withRS.Cycles)) / float64(withRS.Cycles)
		table.AddRowf(w.Name, withRS.Instrs, withRS.Cycles,
			fmt.Sprintf("%.2f", withRS.IPC()),
			fmt.Sprintf("%.1f%%", 100*withRS.BHTAccuracy),
			withoutRS.Cycles,
			fmt.Sprintf("%+.1f%%", benefit))
	}
	table.Fprint(os.Stdout)
	fmt.Println("\nthe \"RS benefit\" column quantifies the paper's Figure 2: the")
	fmt.Println("reservation-station path lets dispatch continue past operations")
	fmt.Println("waiting for operands — behaviour the L-chart formalism of LISA")
	fmt.Println("cannot express but a multi-path OSM models directly.")
}
