// Strongarm runs the paper's first case study end to end: the six
// MediaBench-like kernels on the cycle-accurate StrongARM (SA-1100)
// OSM model, printing a Table-1-style row per kernel with checksum
// verification against the Go reference implementations.
//
// Run with: go run ./examples/strongarm
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/osm"
	"repro/internal/sim/strongarm"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	table := stats.NewTable("StrongARM OSM model (SA-1100 hierarchy, cold caches)",
		"benchmark", "instrs", "cycles", "CPI", "icache hit", "dcache hit", "checksum")
	for _, w := range workload.All() {
		n := w.DefaultN
		p, err := w.ARMProgram(n)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := strongarm.New(p, strongarm.Config{})
		if err != nil {
			log.Fatal(err)
		}
		st, err := sim.Run(1_000_000_000)
		if err != nil {
			log.Fatalf("%s: %v", w.Name, err)
		}
		check := "FAIL"
		if len(sim.ISS.Reported) == 1 && sim.ISS.Reported[0] == w.Ref(n) {
			check = "ok"
		}
		table.AddRowf(w.Name, st.Instrs, st.Cycles,
			fmt.Sprintf("%.2f", st.CPI()),
			fmt.Sprintf("%.2f%%", 100*st.ICache.HitRate()),
			fmt.Sprintf("%.2f%%", 100*st.DCache.HitRate()),
			check)
	}
	table.Fprint(os.Stdout)
	fmt.Println("\nevery checksum is verified against the kernel's Go reference")
	fmt.Println("implementation: the timing model executes the real programs.")

	// Stage utilization for one kernel, computed from the OSM
	// transition trace (osm.Recorder).
	w := workload.ByName("gsm/enc")
	p, err := w.ARMProgram(200)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := strongarm.New(p, strongarm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rec := osm.NewRecorder()
	rec.Limit = 1 // keep counts, not history
	sim.Director().Tracer = rec
	if _, err := sim.Run(10_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npipeline stage utilization on gsm/enc (entries per cycle):")
	for _, st := range []string{"F", "D", "E", "B", "W"} {
		u := rec.Utilization(st)
		bar := ""
		for i := 0; i < int(u*40); i++ {
			bar += "#"
		}
		fmt.Printf("  %s  %5.1f%%  %s\n", st, 100*u, bar)
	}
}
