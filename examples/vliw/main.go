// Vliw demonstrates the remaining architecture class of the paper's
// Section 6: "Since Very Long Instruction Word (VLIW) architectures
// have simpler pipeline control, they can be easily modeled by OSM as
// well."
//
// The simplicity shows directly in the model: a whole bundle is one
// operation state machine, and the lockstep issue of its three slots
// (two ALUs and one memory unit) is a single edge whose condition is
// the conjunction of the three slot-resource allocations — the Λ
// language's all-or-nothing commit *is* VLIW issue semantics. A slot
// whose unit stalls (a memory-slot cache miss here) stalls the whole
// bundle, with no interlock logic written anywhere.
//
// Run with: go run ./examples/vliw
package main

import (
	"fmt"
	"log"

	"repro/internal/osm"
)

// slotOp is one operation inside a bundle; Nop marks an empty slot
// (the compiler's job in a real VLIW).
type slotOp struct {
	Nop    bool
	Dst    int
	A, B   int
	MemLat uint64 // memory-slot stall (0 for ALU slots)
}

// bundle is one very long instruction word: alu0, alu1, mem.
type bundle struct {
	Slots [3]slotOp
}

func main() {
	// Hardware layer: one unit per slot plus a write-back port pair.
	alu0 := osm.NewUnitManager("alu0", 1)
	alu1 := osm.NewUnitManager("alu1", 1)
	mem := osm.NewUnitManager("mem", 1)
	wb := osm.NewUnitManager("wb", 1)

	regs := make([]uint64, 16)
	for i := range regs {
		regs[i] = uint64(i)
	}

	program := []bundle{
		{Slots: [3]slotOp{{Dst: 1, A: 2, B: 3}, {Dst: 4, A: 5, B: 6}, {Nop: true}}},
		{Slots: [3]slotOp{{Dst: 7, A: 1, B: 4}, {Nop: true}, {Dst: 8, A: 0, B: 0, MemLat: 4}}},
		{Slots: [3]slotOp{{Dst: 9, A: 7, B: 8}, {Dst: 10, A: 1, B: 1}, {Nop: true}}},
		{Slots: [3]slotOp{{Dst: 11, A: 9, B: 10}, {Nop: true}, {Nop: true}}},
	}
	pc, retired := 0, 0

	I := osm.NewState("I")
	E := osm.NewState("E")
	W := osm.NewState("W")

	// Issue: the whole bundle allocates all three slot units in one
	// conjunction — either every slot issues this cycle or none does.
	issue := I.Connect("issue", E,
		osm.Alloc(alu0, 0), osm.Alloc(alu1, 0), osm.Alloc(mem, 0))
	issue.When = func(m *osm.Machine) bool { return pc < len(program) }
	issue.Action = func(m *osm.Machine) {
		b := &program[pc]
		pc++
		m.Ctx = b
		for _, s := range b.Slots {
			if s.Nop {
				continue
			}
			regs[s.Dst] = regs[s.A] + regs[s.B]
			if s.MemLat > 0 {
				// The memory slot misses: the mem unit refuses its
				// release, stalling the whole bundle in E.
				mem.SetBusy(0, s.MemLat)
			}
		}
	}

	// All three units release together; a busy one blocks the
	// conjunction, which is exactly VLIW lockstep.
	E.Connect("wb", W,
		osm.Release(alu0, 0), osm.Release(alu1, 0), osm.Release(mem, 0),
		osm.Alloc(wb, 0))

	done := W.Connect("retire", I, osm.Release(wb, 0))
	done.Action = func(m *osm.Machine) { retired++ }

	d := osm.NewDirector()
	d.CheckDeadlock = true
	d.AddManager(alu0, alu1, mem, wb)
	d.AddMachine(osm.NewMachine("b0", I), osm.NewMachine("b1", I))
	d.Tracer = osm.TracerFunc(func(step uint64, m *osm.Machine, e *osm.Edge) {
		fmt.Printf("  cycle %2d: %s %s\n", step, m.Name, e.Name)
	})

	fmt.Println("3-slot VLIW, 4 bundles (bundle 1 carries a 4-cycle memory miss):")
	steps, err := d.Run(func() bool { return retired == len(program) })
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d bundles in %d cycles (the miss stalls the machine in lockstep)\n",
		retired, steps)
	fmt.Printf("r11 = %d (the dependent sum threaded through all four bundles)\n", regs[11])
}
