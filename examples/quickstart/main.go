// Quickstart builds the paper's Figures 5 and 6 by hand on the public
// OSM API: a generic 5-stage RISC pipeline (fetch, decode, execute,
// buffer, write-back) whose operations are state machines and whose
// stages and register file are token managers. It runs a tiny
// three-operation program and prints a cycle-by-cycle trace showing
// structure hazards, a data-hazard stall and the same-cycle stage
// handoff the director's rank-ordered scheduling provides.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/osm"
)

// instr is the toy operation: dst = src + imm.
type instr struct {
	dst, src int
	imm      uint64
	operand  uint64 // latched at issue
}

func main() {
	// Hardware layer: one occupancy token per pipeline stage and a
	// register file with value and register-update tokens.
	ifq := osm.NewUnitManager("IF", 1)
	id := osm.NewUnitManager("ID", 1)
	ex := osm.NewUnitManager("EX", 1)
	bf := osm.NewUnitManager("BF", 1)
	wb := osm.NewUnitManager("WB", 1)
	rf := osm.NewRegFileManager("RF", 8)

	// Operation layer: the Figure 6 state machine.
	I := osm.NewState("I")
	F := osm.NewState("F")
	D := osm.NewState("D")
	E := osm.NewState("E")
	B := osm.NewState("B")
	W := osm.NewState("W")

	program := []instr{
		{dst: 1, src: 0, imm: 5}, // r1 = r0 + 5
		{dst: 2, src: 1, imm: 3}, // r2 = r1 + 3   (data hazard on r1)
		{dst: 3, src: 0, imm: 9}, // r3 = r0 + 9
	}
	pc := 0
	retired := 0

	src := func(m *osm.Machine) osm.TokenID { return osm.TokenID(m.Ctx.(*instr).src) }
	dst := func(m *osm.Machine) osm.TokenID { return osm.UpdateToken(m.Ctx.(*instr).dst) }

	fetch := I.Connect("e0", F, osm.Alloc(ifq, 0))
	fetch.When = func(m *osm.Machine) bool { return pc < len(program) }
	fetch.Action = func(m *osm.Machine) {
		ins := program[pc]
		pc++
		m.Ctx = &ins
	}

	F.Connect("e1", D, osm.Release(ifq, 0), osm.Alloc(id, 0))

	issue := D.Connect("e2", E,
		osm.Release(id, 0),
		osm.InquireF(rf, src), // data hazard: wait for the value token
		osm.Alloc(ex, 0),
		osm.AllocF(rf, dst)) // claim the register-update token
	issue.Action = func(m *osm.Machine) {
		ins := m.Ctx.(*instr)
		ins.operand = rf.Read(ins.src)
	}

	compute := E.Connect("e3", B, osm.Release(ex, 0), osm.Alloc(bf, 0))
	compute.Action = func(m *osm.Machine) {
		ins := m.Ctx.(*instr)
		// Attach the result to the update token; the register file
		// writes it when the token is released at write-back.
		if err := m.SetData(rf, osm.UpdateToken(ins.dst), ins.operand+ins.imm); err != nil {
			log.Fatal(err)
		}
	}

	B.Connect("e4", W, osm.Release(bf, 0), osm.Alloc(wb, 0))

	retire := W.Connect("e5", I, osm.Release(wb, 0), osm.ReleaseF(rf, dst))
	retire.Action = func(m *osm.Machine) { retired++ }

	// Director: one control step per clock cycle (paper Figure 3).
	d := osm.NewDirector()
	d.CheckDeadlock = true
	d.AddManager(ifq, id, ex, bf, wb, rf)
	for k := 0; k < 6; k++ {
		d.AddMachine(osm.NewMachine(fmt.Sprintf("op%d", k), I))
	}
	d.Tracer = osm.TracerFunc(func(step uint64, m *osm.Machine, e *osm.Edge) {
		fmt.Printf("  cycle %2d: %s takes %-3s (%s -> %s)\n",
			step, m.Name, e.Name, e.From.Name, e.To.Name)
	})

	fmt.Println("5-stage pipeline (paper Figs. 5-6), 3-operation program:")
	steps, err := d.Run(func() bool { return retired == len(program) })
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nretired %d operations in %d cycles\n", retired, steps)
	fmt.Printf("r1 = %d, r2 = %d, r3 = %d\n", rf.Read(1), rf.Read(2), rf.Read(3))
	fmt.Println("\nnote the data hazard: op1 (r2 = r1+3) waits in D until op0's")
	fmt.Println("register-update token for r1 is released at write-back.")
}
