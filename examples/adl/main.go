// Adl demonstrates the paper's stated next step (Section 7): an
// architecture description language based on the OSM model. The whole
// declarative part of a 5-stage pipeline — managers, states, edges,
// token conditions, reset edges — is the text below; the host attaches
// only the operation semantics. The program then runs on the
// synthesized model, and the static validator (Section 6) checks the
// token discipline of every operation flow.
//
// Run with: go run ./examples/adl
package main

import (
	"fmt"
	"log"

	"repro/internal/adl"
	"repro/internal/osm"
)

const description = `
// A 5-stage RISC pipeline (the paper's Figure 5/6) as a description.
model pipeline {
  managers {
    unit    IF(1); unit ID(1); unit EX(1); unit BF(1); unit WB(1);
    regfile RF(16);
    reset   RESET;
  }
  states { I*, F, D, E, B, W }
  edges {
    e0: I -> F [ alloc IF.0 ];
    e1: F -> D [ release IF.0, alloc ID.0 ];
    e2: D -> E [ release ID.0, inquire RF.$src, alloc EX.0, alloc RF.!$dst ];
    e3: E -> B [ release EX.0, alloc BF.0 ];
    e4: B -> W [ release BF.0, alloc WB.0 ];
    e5: W -> I [ release WB.0, release RF.!$dst ];
    r0: F -> I reset;
    r1: D -> I reset;
  }
  machines 6;
}
`

// instr is the toy operation the host binds to the model.
type instr struct {
	dst, src int
	imm      uint64
	operand  uint64
}

func main() {
	// The $src and $dst identifiers of the description resolve
	// against the decoded operation context — the paper's "decode the
	// instruction and initialize all its allocation and inquiry
	// identifiers".
	model, err := adl.Build(description, map[string]adl.Binding{
		"src": func(m *osm.Machine) osm.TokenID { return osm.TokenID(m.Ctx.(*instr).src) },
		"dst": func(m *osm.Machine) osm.TokenID { return osm.TokenID(m.Ctx.(*instr).dst) },
	})
	if err != nil {
		log.Fatal(err)
	}

	if issues := model.Validate(16); len(issues) != 0 {
		log.Fatalf("model failed static validation: %v", issues)
	}
	fmt.Println("static token-discipline validation: clean (paper §6)")

	// Attach operation semantics — the only part the ADL cannot
	// express declaratively.
	rf := model.Manager("RF").(*osm.RegFileManager)
	program := []instr{
		{dst: 1, src: 0, imm: 7},
		{dst: 2, src: 1, imm: 4},
		{dst: 3, src: 2, imm: 1},
	}
	pc, retired := 0, 0
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(model.OnWhen("e0", func(m *osm.Machine) bool { return pc < len(program) }))
	must(model.OnEdge("e0", func(m *osm.Machine) {
		ins := program[pc]
		pc++
		m.Ctx = &ins
	}))
	must(model.OnEdge("e2", func(m *osm.Machine) {
		ins := m.Ctx.(*instr)
		ins.operand = rf.Read(ins.src)
	}))
	must(model.OnEdge("e3", func(m *osm.Machine) {
		ins := m.Ctx.(*instr)
		must(m.SetData(rf, osm.UpdateToken(ins.dst), ins.operand+ins.imm))
	}))
	must(model.OnEdge("e5", func(m *osm.Machine) { retired++ }))

	steps, err := model.Director.Run(func() bool { return retired == len(program) })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran a dependent 3-operation chain in %d cycles\n", steps)
	fmt.Printf("r1=%d r2=%d r3=%d\n", rf.Read(1), rf.Read(2), rf.Read(3))

	// Reservation tables fall out of the declarative description
	// statically (paper §6: properties for a retargetable compiler).
	fmt.Println("\nreservation table of the operation flow:")
	for _, p := range osm.EnumeratePaths(model.State("I"), 16) {
		if len(p) != 6 {
			continue // skip the reset flows
		}
		for i, use := range osm.ReservationTable(p) {
			fmt.Printf("  step %d in %-2s holds %v\n", i, use.State.Name, use.Held)
		}
	}
}
