// Analysis demonstrates the formal side of the OSM model (paper §6):
// because a model is a declarative rule system — states, edges, token
// conditions — its properties can be extracted and checked statically,
// and pathological dynamics (cyclic resource waits) are detected and
// reported at run time rather than hanging the simulator.
//
// Three demonstrations:
//  1. static token-discipline validation of a correct pipeline and of
//     a deliberately broken one (a leaked stage token);
//  2. reservation tables and operand latencies extracted from the
//     state graph — the properties "used by a retargetable compiler
//     during operation scheduling";
//  3. run-time deadlock detection: two operations acquiring two
//     resources in opposite orders, reported as a wait-for cycle.
//
// Run with: go run ./examples/analysis
package main

import (
	"fmt"

	"repro/internal/osm"
)

func buildPipeline(leak bool) (*osm.State, []*osm.UnitManager) {
	names := []string{"IF", "ID", "EX"}
	stages := make([]*osm.UnitManager, len(names))
	for i, n := range names {
		stages[i] = osm.NewUnitManager(n, 1)
	}
	I := osm.NewState("I")
	F := osm.NewState("F")
	D := osm.NewState("D")
	E := osm.NewState("E")
	I.Connect("e0", F, osm.Alloc(stages[0], 0))
	F.Connect("e1", D, osm.Release(stages[0], 0), osm.Alloc(stages[1], 0))
	D.Connect("e2", E, osm.Release(stages[1], 0), osm.Alloc(stages[2], 0))
	if leak {
		I2 := I // the broken variant forgets to release EX
		E.Connect("e3", I2)
	} else {
		E.Connect("e3", I, osm.Release(stages[2], 0))
	}
	return I, stages
}

func main() {
	// 1. Static validation.
	good, goodStages := buildPipeline(false)
	fmt.Printf("correct pipeline: %d issues\n", len(osm.Validate(good, 10)))
	bad, _ := buildPipeline(true)
	for _, issue := range osm.Validate(bad, 10) {
		fmt.Println("broken pipeline:", issue.Msg)
	}

	// 2. Property extraction.
	fmt.Println("\noperation flows and reservation tables:")
	for _, p := range osm.EnumeratePaths(good, 10) {
		fmt.Println("  path:", p)
		for step, use := range osm.ReservationTable(p) {
			fmt.Printf("    step %d in %-2s holds %v\n", step, use.State.Name, use.Held)
		}
	}
	// Operand latency of the EX stage resource along the flow.
	for _, p := range osm.EnumeratePaths(good, 10) {
		fmt.Printf("  EX occupancy along the flow: %d edge(s)\n",
			osm.OperandLatency(p, goodStages[2]))
	}

	// 3. Run-time deadlock detection.
	fmt.Println("\ndeadlock detection:")
	x := osm.NewUnitManager("X", 1)
	y := osm.NewUnitManager("Y", 1)
	mk := func(name string, first, second *osm.UnitManager) *osm.Machine {
		i := osm.NewState("I-" + name)
		a := osm.NewState("A-" + name)
		b := osm.NewState("B-" + name)
		i.Connect("grab1", a, osm.Alloc(first, 0))
		a.Connect("grab2", b, osm.Alloc(second, 0), osm.Release(first, 0))
		b.Connect("done", i, osm.Release(second, 0))
		return osm.NewMachine(name, i)
	}
	d := osm.NewDirector()
	d.CheckDeadlock = true
	d.AddManager(x, y)
	d.AddMachine(mk("opA", x, y), mk("opB", y, x)) // opposite acquisition orders
	for step := 0; step < 4; step++ {
		if err := d.Step(); err != nil {
			fmt.Println("  director aborted:", err)
			return
		}
	}
	fmt.Println("  (no deadlock hit — unexpected)")
}
